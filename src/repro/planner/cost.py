"""The planner's cost model: FAQ-width plus data-aware statistics.

A candidate ``(ordering, strategy)`` pair is scored by simulating the
elimination it would perform:

* the induced sets ``U_k`` come from the FAQ elimination sequence
  (product variables drop out of edges, Definition 5.4);
* each InsideOut step is estimated by the *data-dependent AGM bound*
  ``AGM_H(U_k)`` of the original hypergraph (the quantity Theorem 4.6 bounds
  the intermediates by, thanks to the indicator projections), capped by the
  dense domain box ``∏_{v ∈ U_k} |Dom(v)|``;
* each textbook variable-elimination step is estimated by the *pairwise
  product* of the estimated sizes of the incident factors (no projections —
  exactly the gap Table 1 attributes to the prior PGM algorithms), capped by
  the same box;
* a step additionally gets a vectorised (dense) estimate — the box cell
  count weighted by :data:`DENSE_CELL_WEIGHT` — whenever the semiring and
  aggregate map to NumPy ufuncs and the box fits under the
  :class:`~repro.factors.backend.BackendPolicy` cell cap, mirroring the
  dense-vs-sparse heuristic of :mod:`repro.factors.backend`.

``ρ*`` and AGM evaluations are memoised per cost-model instance: candidate
orderings of the same query share most of their induced sets, and each
evaluation solves a small LP.  ``ρ*`` is additionally backed by the
process-wide restricted-edge-structure memo of
:func:`repro.hypergraph.covers.fractional_edge_cover_number`, so even a
fresh cost model rarely pays for an LP the process has seen before.  :attr:`CostModel.invocations` counts
top-level :meth:`CostModel.estimate` calls so tests can verify that a
:class:`~repro.planner.cache.PlanCache` hit skips the ordering search.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.query import FAQQuery
from repro.factors.backend import (
    BACKEND_DENSE,
    BACKEND_SPARSE,
    BackendPolicy,
    DEFAULT_POLICY,
    supports_dense,
)
from repro.hypergraph.covers import agm_bound, fractional_edge_cover_number
from repro.hypergraph.elimination import induced_unions
from repro.hypergraph.hypergraph import Hypergraph

# Strategy names understood by the planner.
STRATEGY_INSIDEOUT = "insideout"
STRATEGY_VARIABLE_ELIMINATION = "variable-elimination"
STRATEGY_YANNAKAKIS = "yannakakis"
STRATEGY_GENERIC_JOIN = "generic-join"
STRATEGIES = (
    STRATEGY_INSIDEOUT,
    STRATEGY_VARIABLE_ELIMINATION,
    STRATEGY_YANNAKAKIS,
    STRATEGY_GENERIC_JOIN,
)

# Per-estimated-tuple work factors.  A dense (vectorised) cell is far cheaper
# than a sparse per-tuple dict operation; Yannakakis and generic join avoid
# the general elimination machinery on the query shapes they apply to.
DENSE_CELL_WEIGHT = 0.05
# Calibration loop (CostModel.observe): EWMA smoothing of the observed
# log-size errors, and the clamp keeping one pathological run from swinging
# future estimates by more than e^±2 ≈ 7.4x in either direction.
CALIBRATION_ALPHA = 0.5
CALIBRATION_CLAMP = 2.0
STRATEGY_WEIGHT = {
    STRATEGY_INSIDEOUT: 1.0,
    STRATEGY_VARIABLE_ELIMINATION: 0.95,
    STRATEGY_GENERIC_JOIN: 0.8,
    STRATEGY_YANNAKAKIS: 0.6,
}


@dataclass(frozen=True)
class QueryStatistics:
    """Data statistics the cost model scores candidate plans against."""

    factor_sizes: Dict[FrozenSet[str], int]
    domain_sizes: Dict[str, int]
    num_factors: int
    total_input: int
    max_factor_size: int

    @classmethod
    def from_query(cls, query: FAQQuery) -> "QueryStatistics":
        """Collect factor sizes, domain cardinalities and input totals."""
        return cls(
            factor_sizes=query.factor_sizes(),
            domain_sizes={v: query.domain_size(v) for v in query.order},
            num_factors=len(query.factors),
            total_input=sum(len(f) for f in query.factors),
            max_factor_size=query.input_size,
        )


@dataclass
class StepEstimate:
    """Estimated cost of one elimination step of a candidate plan."""

    variable: str
    kind: str  # "semiring", "product" or "output"
    induced: FrozenSet[str]
    rho_star: float
    box_cells: float
    sparse_cost: float
    dense_cost: Optional[float]  # None when the step cannot vectorise
    backend: str  # the cheaper representation for this step
    est_size: float = float("nan")  # estimated result tuples (NaN: not modelled)

    @property
    def cost(self) -> float:
        if self.dense_cost is not None and self.dense_cost < self.sparse_cost:
            return self.dense_cost
        return self.sparse_cost


@dataclass
class OrderingEstimate:
    """The scored result of one ``(ordering, strategy)`` candidate."""

    ordering: Tuple[str, ...]
    strategy: str
    backend: str  # "sparse" | "dense" | "auto" suggestion for the whole run
    total_cost: float
    faq_width: float
    steps: List[StepEstimate] = field(default_factory=list)


class CostModel:
    """Scores candidate orderings/strategies against query statistics."""

    def __init__(self, policy: BackendPolicy = DEFAULT_POLICY) -> None:
        self.policy = policy
        self.invocations = 0
        self.observations = 0
        self._rho_cache: Dict[tuple, float] = {}
        self._agm_cache: Dict[tuple, float] = {}
        # strategy -> EWMA of the signed mean log(observed/estimated) step
        # size error reported through observe().  Applied in estimate() as a
        # multiplicative correction: a strategy whose intermediates keep
        # coming in above the model's sizes gets its future totals scaled up
        # (and vice versa), shifting strategy/ordering choices accordingly.
        self._calibration_log: Dict[str, float] = {}
        # Objects (hypergraphs, statistics) pinned while their id() keys
        # entries in the caches — without the pin a recycled id could
        # resolve to a stale quantity.
        self._pinned: Dict[int, object] = {}
        # The process-wide model is shared by concurrent planner calls
        # (repro.serve plans queries on a pool): the counter and the memo
        # maps are guarded so stats stay exact under the workers.  LPs are
        # solved outside the lock — a duplicate solve is benign (equal
        # results), a serialized solve is not.
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # memoised hypergraph quantities
    # ------------------------------------------------------------------ #
    def _pin_key(self, obj: object) -> int:
        """A stable id() key for an unhashable object, pinned against reuse."""
        key = id(obj)
        with self._lock:
            if key not in self._pinned:
                if len(self._pinned) >= 256:
                    self._pinned.clear()
                    self._rho_cache.clear()
                    self._agm_cache.clear()
                self._pinned[key] = obj
        return key

    def _hypergraph_key(self, hypergraph: Hypergraph) -> int:
        return self._pin_key(hypergraph)

    def rho_star(self, hypergraph: Hypergraph, subset: FrozenSet[str]) -> float:
        """Memoised ``ρ*_H(subset)`` (one LP per distinct subset)."""
        key = (self._hypergraph_key(hypergraph), subset)
        with self._lock:
            cached = self._rho_cache.get(key)
        if cached is None:
            if len(subset) <= 1:
                cached = float(bool(subset))
            else:
                cached = fractional_edge_cover_number(
                    hypergraph, subset, ignore_uncovered=True
                )
            with self._lock:
                # A concurrent _pin_key may have cleared the pins (and the
                # id may even have been re-pinned by a different object)
                # while the LP ran; storing under such a key could later
                # serve a stale value.  Store only while the id still pins
                # this very object (the result itself is still returned).
                if self._pinned.get(key[0]) is hypergraph:
                    self._rho_cache[key] = cached
        return cached

    def agm(
        self,
        hypergraph: Hypergraph,
        stats: QueryStatistics,
        subset: FrozenSet[str],
    ) -> float:
        """Memoised data-dependent AGM bound ``∏ |ψ_S|^{λ*_S}`` on ``subset``.

        Unlike ``ρ*`` the AGM bound depends on the factor sizes, so the
        statistics object is part of the memo key — the same model instance
        scoring the same hypergraph under different statistics must not see
        stale bounds.
        """
        key = (self._hypergraph_key(hypergraph), self._pin_key(stats), subset)
        with self._lock:
            cached = self._agm_cache.get(key)
        if cached is None:
            covered = frozenset(
                v for v in subset if any(v in e for e in hypergraph.edges)
            )
            if not covered:
                cached = 1.0
            else:
                cached = agm_bound(hypergraph, stats.factor_sizes, covered)
            with self._lock:
                # Same stale-id guard as rho_star: both ids must still pin
                # these very objects for the store to be safe.
                if (
                    self._pinned.get(key[0]) is hypergraph
                    and self._pinned.get(key[1]) is stats
                ):
                    self._agm_cache[key] = cached
        return cached

    # ------------------------------------------------------------------ #
    # calibration — the observation half of the planner feedback loop
    # ------------------------------------------------------------------ #
    def observe(self, strategy: str, errors: Sequence[float]) -> float:
        """Fold observed-vs-estimated step-size errors into the calibration.

        ``errors`` are signed per-step log errors
        ``log((observed_size + 1) / (estimated_size + 1))`` (see
        :func:`observed_step_errors`).  Their mean updates a per-strategy
        EWMA (``alpha`` = :data:`CALIBRATION_ALPHA`) clamped to
        ±:data:`CALIBRATION_CLAMP` log units; :meth:`estimate` multiplies
        future totals for the strategy by ``exp`` of the EWMA.  Returns the
        updated multiplier (1.0 when ``errors`` is empty).
        """
        finite = [e for e in errors if math.isfinite(e)]
        if not finite:
            return self.calibration(strategy)
        signal = sum(finite) / len(finite)
        signal = max(-CALIBRATION_CLAMP, min(CALIBRATION_CLAMP, signal))
        with self._lock:
            self.observations += 1
            previous = self._calibration_log.get(strategy, 0.0)
            updated = (1.0 - CALIBRATION_ALPHA) * previous + CALIBRATION_ALPHA * signal
            self._calibration_log[strategy] = updated
        return math.exp(updated)

    def calibration(self, strategy: str) -> float:
        """The current multiplicative correction for ``strategy`` (1.0 = none)."""
        with self._lock:
            return math.exp(self._calibration_log.get(strategy, 0.0))

    # ------------------------------------------------------------------ #
    def _box_cells(self, variables: FrozenSet[str], stats: QueryStatistics) -> float:
        cells = 1.0
        for v in variables:
            cells *= stats.domain_sizes.get(v, 1)
            if cells > 1e18:
                return math.inf
        return cells

    def _dense_cost(
        self,
        query: FAQQuery,
        box: float,
        tag: Optional[str],
    ) -> Optional[float]:
        tags = (tag,) if tag is not None else ()
        if not supports_dense(query.semiring, tags):
            return None
        if box > self.policy.cell_cap:
            return None
        return box * DENSE_CELL_WEIGHT

    # ------------------------------------------------------------------ #
    # the main scoring entry point
    # ------------------------------------------------------------------ #
    def estimate(
        self,
        query: FAQQuery,
        stats: QueryStatistics,
        ordering: Sequence[str],
        strategy: str = STRATEGY_INSIDEOUT,
        hypergraph: Hypergraph | None = None,
    ) -> OrderingEstimate:
        """Score one candidate ``(ordering, strategy)`` pair.

        Pass the query's ``hypergraph`` explicitly when scoring several
        candidates so the LP memos are shared between them.  Increments
        :attr:`invocations` — the counter plan-cache tests use to prove that
        a cache hit skips the ordering search entirely.
        """
        with self._lock:
            self.invocations += 1
        order = tuple(ordering)
        if hypergraph is None:
            hypergraph = query.hypergraph()

        if strategy in (STRATEGY_YANNAKAKIS, STRATEGY_GENERIC_JOIN):
            return self._estimate_join_strategy(query, stats, order, hypergraph, strategy)

        unions = induced_unions(hypergraph, order, query.product_variables)
        k_set = query.k_set

        # Simulated per-factor size estimates (scope, estimated tuples).
        live: List[Tuple[FrozenSet[str], float]] = [
            (frozenset(f.scope), float(len(f))) for f in query.factors
        ]
        estimates: List[StepEstimate] = []
        faq_width = 0.0
        total = 0.0

        for position in range(len(order) - 1, query.num_free - 1, -1):
            variable = order[position]
            aggregate = query.aggregates[variable]
            if aggregate.is_product:
                product_cost = sum(size for _, size in live)
                live = [
                    (scope - {variable}, size) for scope, size in live
                ]
                estimates.append(
                    StepEstimate(
                        variable=variable,
                        kind="product",
                        induced=frozenset({variable}),
                        rho_star=0.0,
                        box_cells=float(stats.domain_sizes.get(variable, 1)),
                        sparse_cost=product_cost,
                        dense_cost=None,
                        backend=BACKEND_SPARSE,
                    )
                )
                total += product_cost
                continue

            union = unions[variable]
            rho = self.rho_star(hypergraph, union)
            faq_width = max(faq_width, rho) if variable in k_set else faq_width
            box = self._box_cells(union, stats)

            incident = [(scope, size) for scope, size in live if variable in scope]
            rest = [(scope, size) for scope, size in live if variable not in scope]
            if not incident:
                # Constant fold, negligible work.
                estimates.append(
                    StepEstimate(
                        variable=variable,
                        kind="semiring",
                        induced=frozenset({variable}),
                        rho_star=rho,
                        box_cells=float(stats.domain_sizes.get(variable, 1)),
                        sparse_cost=1.0,
                        dense_cost=None,
                        backend=BACKEND_SPARSE,
                        est_size=1.0,
                    )
                )
                total += 1.0
                live = rest
                continue

            if strategy == STRATEGY_VARIABLE_ELIMINATION:
                # Pairwise products of exactly the incident factors.
                sparse = incident[0][1]
                for _, size in incident[1:]:
                    sparse = min(box, sparse * max(size, 1.0))
            else:
                # InsideOut: a single worst-case-optimal join bounded by the
                # data-dependent AGM bound of the induced set.
                sparse = min(box, self.agm(hypergraph, stats, union))
                sparse += sum(size for _, size in incident)

            dense = self._dense_cost(query, box, aggregate.tag)
            backend = (
                BACKEND_DENSE if dense is not None and dense < sparse else BACKEND_SPARSE
            )
            result_scope = union - {variable}
            result_size = min(
                self._box_cells(result_scope, stats),
                sparse if strategy == STRATEGY_VARIABLE_ELIMINATION
                else self.agm(hypergraph, stats, union),
            )
            step = StepEstimate(
                variable=variable,
                kind="semiring",
                induced=union,
                rho_star=rho,
                box_cells=box,
                sparse_cost=sparse,
                dense_cost=dense,
                backend=backend,
                est_size=result_size,
            )
            estimates.append(step)
            total += step.cost

            live = rest + [(result_scope, result_size)]

        # Output phase over the free variables.
        if query.num_free:
            free_set = frozenset(query.free)
            for variable in query.free:
                rho = self.rho_star(hypergraph, unions[variable])
                faq_width = max(faq_width, rho)
            out_box = self._box_cells(free_set, stats)
            if strategy == STRATEGY_VARIABLE_ELIMINATION:
                out_sparse = live[0][1] if live else 1.0
                for _, size in live[1:]:
                    out_sparse = min(out_box, out_sparse * max(size, 1.0))
            else:
                out_sparse = min(out_box, self.agm(hypergraph, stats, free_set))
                out_sparse += sum(size for _, size in live)
            out_dense = self._dense_cost(query, out_box, None)
            out_backend = (
                BACKEND_DENSE
                if out_dense is not None and out_dense < out_sparse
                else BACKEND_SPARSE
            )
            out_step = StepEstimate(
                variable="<output>",
                kind="output",
                induced=free_set,
                rho_star=self.rho_star(hypergraph, free_set),
                box_cells=out_box,
                sparse_cost=out_sparse,
                dense_cost=out_dense,
                backend=out_backend,
                est_size=min(out_box, self.agm(hypergraph, stats, free_set)),
            )
            estimates.append(out_step)
            total += out_step.cost

        backend = self._suggest_backend(estimates)
        total *= STRATEGY_WEIGHT[strategy] * self.calibration(strategy)
        return OrderingEstimate(
            ordering=order,
            strategy=strategy,
            backend=backend,
            total_cost=total,
            faq_width=faq_width,
            steps=estimates,
        )

    def _estimate_join_strategy(
        self,
        query: FAQQuery,
        stats: QueryStatistics,
        order: Tuple[str, ...],
        hypergraph: Hypergraph,
        strategy: str,
    ) -> OrderingEstimate:
        """Score Yannakakis / generic join on an all-free indicator query."""
        all_vars = frozenset(query.order)
        out_est = min(
            self._box_cells(all_vars, stats), self.agm(hypergraph, stats, all_vars)
        )
        if strategy == STRATEGY_YANNAKAKIS:
            # Two semijoin passes plus the bottom-up join: O~(input + output).
            sparse = 3.0 * stats.total_input + out_est
        else:
            sparse = stats.total_input + out_est
        step = StepEstimate(
            variable="<join>",
            kind="output",
            induced=all_vars,
            rho_star=self.rho_star(hypergraph, all_vars),
            box_cells=self._box_cells(all_vars, stats),
            sparse_cost=sparse,
            dense_cost=None,
            backend=BACKEND_SPARSE,
            est_size=out_est,
        )
        return OrderingEstimate(
            ordering=order,
            strategy=strategy,
            backend=BACKEND_SPARSE,
            total_cost=sparse * STRATEGY_WEIGHT[strategy] * self.calibration(strategy),
            faq_width=step.rho_star,
            steps=[step],
        )

    @staticmethod
    def _suggest_backend(steps: Sequence[StepEstimate]) -> str:
        """Collapse per-step representation choices into an engine mode."""
        eliminations = [s for s in steps if s.kind in ("semiring", "output")]
        if not eliminations:
            return BACKEND_SPARSE
        dense_steps = sum(1 for s in eliminations if s.backend == BACKEND_DENSE)
        if dense_steps == 0:
            return BACKEND_SPARSE
        if dense_steps == len(eliminations):
            return BACKEND_DENSE
        return "auto"


# ---------------------------------------------------------------------- #
# observed-vs-estimated comparison (the feedback half of the loop)
# ---------------------------------------------------------------------- #
def observed_step_errors(step_sizes: Sequence[float], stats) -> List[float]:
    """Signed per-step log errors of a plan against an execution's stats.

    ``step_sizes`` is :attr:`repro.planner.plan.Plan.step_sizes` — the cost
    model's estimated result sizes in elimination order, optionally followed
    by the output-phase estimate; ``stats`` is the ``InsideOutStats`` of the
    run that executed the plan.  Each comparable step contributes
    ``log((observed_size + 1) / (estimated_size + 1))`` — positive when the
    data came in bigger than the model thought.  Product steps (``NaN``
    estimates) and shape mismatches (a different ordering executed than was
    estimated) contribute nothing; a mismatched step *count* returns ``[]``
    outright rather than comparing misaligned steps.
    """
    records = getattr(stats, "steps", None)
    if records is None or not step_sizes:
        return []
    if len(step_sizes) not in (len(records), len(records) + 1):
        return []
    errors: List[float] = []
    for estimated, record in zip(step_sizes, records):
        if record.kind != "semiring" or not math.isfinite(estimated):
            continue
        errors.append(math.log((record.result_size + 1.0) / (estimated + 1.0)))
    output_size = getattr(stats, "output_size", -1)
    if len(step_sizes) == len(records) + 1 and output_size >= 0:
        estimated = step_sizes[-1]
        if math.isfinite(estimated):
            errors.append(math.log((output_size + 1.0) / (estimated + 1.0)))
    return errors

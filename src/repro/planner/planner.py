"""The cost-based query planner (the decision layer over the engines).

``plan(query, stats)`` turns the repo's five ad-hoc per-call-site choices
(which ordering heuristic, which factor backend, which algorithm) into one
tested decision:

1. **candidate orderings** — the written order, the Section 7
   FAQ-width approximation, the min-fill / min-degree / greedy-cover
   heuristics re-arranged to a free-prefix and filtered through the EVO
   membership test of Section 6, plus a few linear extensions of the
   precedence poset for small queries;
2. **scoring** — every ``(ordering, strategy)`` pair is scored by the
   :class:`~repro.planner.cost.CostModel` (FAQ-width LPs + data-aware AGM
   estimates + the dense-box heuristic);
3. **strategy choice** — InsideOut always applies; textbook variable
   elimination for FAQ-SS queries; Yannakakis / generic join for all-free
   indicator queries (natural joins), acyclic or not;
4. **caching** — the winning plan is stored in a
   :class:`~repro.planner.cache.PlanCache` under the structural signature
   of :mod:`repro.planner.signature`, so repeated or isomorphic queries
   skip the search entirely.

Explicit ``ordering=``/``backend=``/``strategy=`` arguments are honoured as
overrides, preserving every pre-planner call signature in the repo.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from repro.core.evo import is_equivalent_ordering, linear_extensions
from repro.core.faqw import approximate_faqw_ordering
from repro.core.query import FAQQuery, QueryError
from repro.factors.backend import validate_backend
from repro.hypergraph.acyclicity import join_tree
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.orderings import min_degree_ordering, min_fill_ordering
from repro.planner.cache import DEFAULT_PLAN_CACHE, CachedPlan, PlanCache
from repro.planner.cost import (
    CostModel,
    OrderingEstimate,
    QueryStatistics,
    STRATEGIES,
    STRATEGY_GENERIC_JOIN,
    STRATEGY_INSIDEOUT,
    STRATEGY_VARIABLE_ELIMINATION,
    STRATEGY_YANNAKAKIS,
    observed_step_errors,
)
from repro.planner.plan import Plan, PlanResult
from repro.planner.signature import (
    is_indicator_join,
    ordering_from_indices,
    ordering_to_indices,
    query_signature,
)

DEFAULT_COST_MODEL = CostModel()
"""The process-wide cost model (its ``invocations`` counter is observable)."""

# Deterministic preference order used to break exact cost ties.
_STRATEGY_RANK = {name: rank for rank, name in enumerate(STRATEGIES)}

_MAX_LINEAR_EXTENSIONS = 4
_LINEAR_EXTENSION_VARS = 8
_GREEDY_COVER_VARS = 10
_EXACT_SEARCH_VARS = 9


# ---------------------------------------------------------------------- #
# strategy applicability
# ---------------------------------------------------------------------- #
def applicable_strategies(query: FAQQuery, hypergraph: Hypergraph | None = None) -> List[str]:
    """The strategies the plan space allows for this query."""
    strategies = [STRATEGY_INSIDEOUT]
    tags = {query.aggregates[v].tag for v in query.semiring_variables}
    if len(tags) <= 1:
        strategies.append(STRATEGY_VARIABLE_ELIMINATION)
    if is_indicator_join(query):
        if hypergraph is None:
            hypergraph = query.hypergraph()
        if join_tree(hypergraph) is not None:
            strategies.append(STRATEGY_YANNAKAKIS)
        strategies.append(STRATEGY_GENERIC_JOIN)
    return strategies


# ---------------------------------------------------------------------- #
# candidate orderings
# ---------------------------------------------------------------------- #
def _free_prefix_arrangement(query: FAQQuery, vertex_order: Sequence[str]) -> Tuple[str, ...]:
    """Re-arrange a plain vertex ordering into free-prefix query form."""
    free = set(query.free)
    order = [v for v in vertex_order if v in free] + [v for v in vertex_order if v not in free]
    missing = [v for v in query.order if v not in set(order)]
    return tuple(order + missing)


def candidate_orderings(
    query: FAQQuery, hypergraph: Hypergraph | None = None
) -> List[Tuple[str, ...]]:
    """Valid (EVO-member) candidate orderings for the planner to score."""
    if hypergraph is None:
        hypergraph = query.hypergraph()
    raw: List[Tuple[str, ...]] = [tuple(query.order)]

    try:
        raw.append(tuple(approximate_faqw_ordering(query)))
    except Exception:  # pragma: no cover - defensive: never lose plannability
        pass

    if query.num_variables <= _EXACT_SEARCH_VARS:
        # Free-prefix-constrained branch-and-bound: optimal induced ρ* width
        # among the orderings the query actually admits (free variables
        # first), so the planner never has to repair an unconstrained
        # optimum into a worse free-prefix arrangement.
        from repro.hypergraph.covers import fractional_edge_cover_number
        from repro.hypergraph.orderings import best_ordering_search

        try:
            constrained, _ = best_ordering_search(
                hypergraph,
                lambda bag: fractional_edge_cover_number(
                    hypergraph, bag, ignore_uncovered=True
                ),
                free=query.free,
            )
            raw.append(_free_prefix_arrangement(query, constrained))
        except Exception:  # pragma: no cover - defensive
            pass

    heuristics = [min_fill_ordering, min_degree_ordering]
    if query.num_variables <= _GREEDY_COVER_VARS:
        from repro.hypergraph.orderings import greedy_fractional_cover_ordering

        heuristics.append(greedy_fractional_cover_ordering)
    for heuristic in heuristics:
        try:
            raw.append(_free_prefix_arrangement(query, heuristic(hypergraph)))
        except Exception:  # pragma: no cover - defensive
            continue

    if query.num_variables <= _LINEAR_EXTENSION_VARS:
        try:
            raw.extend(
                tuple(ext)
                for ext in itertools.islice(
                    linear_extensions(query, limit=_MAX_LINEAR_EXTENSIONS),
                    _MAX_LINEAR_EXTENSIONS,
                )
            )
        except Exception:  # pragma: no cover - defensive
            pass

    candidates: List[Tuple[str, ...]] = []
    seen = set()
    for order in raw:
        if order in seen or len(order) != query.num_variables:
            continue
        seen.add(order)
        if order == tuple(query.order):
            candidates.append(order)
            continue
        try:
            if is_equivalent_ordering(query, order):
                candidates.append(order)
        except Exception:  # pragma: no cover - defensive
            continue
    return candidates


def _validated_explicit_ordering(query: FAQQuery, ordering: Sequence[str]) -> Tuple[str, ...]:
    order = tuple(ordering)
    if set(order) != set(query.order) or len(order) != len(query.order):
        raise QueryError("ordering must be a permutation of the query variables")
    if set(order[: query.num_free]) != set(query.free):
        raise QueryError("ordering must list the free variables first")
    return order


# ---------------------------------------------------------------------- #
# the planner
# ---------------------------------------------------------------------- #
def plan(
    query: FAQQuery,
    stats: Optional[QueryStatistics] = None,
    *,
    ordering: Sequence[str] | str | None = None,
    backend: Optional[str] = None,
    strategy: Optional[str] = None,
    cache: Optional[PlanCache] = None,
    use_cache: bool = True,
    cost_model: Optional[CostModel] = None,
) -> Plan:
    """Choose a :class:`~repro.planner.plan.Plan` for ``query``.

    The returned plan carries ``planning_seconds`` — the wall-clock cost of
    this call — so callers (and ``benchmarks/bench_planner.py``) can track
    planning overhead against execution savings.

    Parameters
    ----------
    stats:
        Data statistics to plan against (collected from the query when
        omitted).  Caller-supplied statistics make the plan bespoke: it
        bypasses the plan cache in both directions, since cache keys do not
        encode statistics.
    ordering:
        ``None`` or ``"plan"`` searches the candidate space; ``"auto"``
        restricts the search to the Section 7 FAQ-width approximation (the
        pre-planner behaviour); an explicit sequence pins the ordering.
    backend / strategy:
        Optional overrides.  While the strategy (or the ordering) is left
        open the planner scores the alternatives so ``explain()`` stays
        meaningful; once *both* ordering and strategy are pinned, scoring
        is skipped entirely and an open backend defers to the engines'
        per-step runtime heuristic (``"auto"``).  A forced strategy the
        query shape does not allow raises
        :class:`~repro.core.query.QueryError`.
    cache / use_cache:
        The :class:`~repro.planner.cache.PlanCache` to consult (defaults to
        the process-wide cache).  Explicitly pinned orderings are never
        cached — there is nothing to search.
    cost_model:
        The :class:`~repro.planner.cost.CostModel` to score with (defaults
        to the process-wide model, whose ``invocations`` counter tests
        use).  Like ``stats``, a caller-supplied model makes the plan
        bespoke and bypasses the plan cache in both directions.
    """
    started = time.perf_counter()
    result = _plan_search(
        query,
        stats,
        ordering=ordering,
        backend=backend,
        strategy=strategy,
        cache=cache,
        use_cache=use_cache,
        cost_model=cost_model,
    )
    result.planning_seconds = time.perf_counter() - started
    return result


def _plan_search(
    query: FAQQuery,
    stats: Optional[QueryStatistics] = None,
    *,
    ordering: Sequence[str] | str | None = None,
    backend: Optional[str] = None,
    strategy: Optional[str] = None,
    cache: Optional[PlanCache] = None,
    use_cache: bool = True,
    cost_model: Optional[CostModel] = None,
) -> Plan:
    """The body of :func:`plan` (split out so the wrapper can time it)."""
    plan_cache = cache if cache is not None else DEFAULT_PLAN_CACHE
    # Score with, in order of preference: the caller's explicit model, the
    # model *paired* with the plan cache (PlanCache(cost_model=...) — the
    # feedback loop's arrangement, where calibration observations shape the
    # searches that refill the same cache), or the process-wide default.
    model = cost_model
    if model is None:
        model = getattr(plan_cache, "cost_model", None)
    if model is None:
        model = DEFAULT_COST_MODEL
    if backend is not None:
        validate_backend(backend)
    if strategy is not None and strategy not in STRATEGIES:
        raise QueryError(f"unknown plan strategy {strategy!r}; expected one of {STRATEGIES}")

    mode = "search"
    if isinstance(ordering, str):
        if ordering == "auto":
            mode = "auto"
        elif ordering != "plan":
            raise QueryError(f"unknown ordering specification {ordering!r}")
        ordering = None

    def _validated_strategies() -> List[str]:
        strategies = applicable_strategies(query, query.hypergraph())
        if strategy is None:
            return strategies
        if strategy not in strategies:
            raise QueryError(
                f"strategy {strategy!r} is not applicable to this query "
                f"(allowed: {strategies})"
            )
        return [strategy]

    # ------------------------------------------------------------------ #
    # pinned ordering: no search, no cache
    # ------------------------------------------------------------------ #
    if ordering is not None:
        order = _validated_explicit_ordering(query, ordering)
        if strategy is not None:
            # Ordering and strategy pinned: nothing worth an LP-backed
            # scoring pass remains.  An open backend defers to the engines'
            # cheap per-step runtime heuristic ("auto") — the pre-planner
            # behaviour of the solver wrappers.  Join strategies still get
            # the applicability check: executing Yannakakis on a
            # non-indicator query would be silently wrong.
            if strategy in (STRATEGY_YANNAKAKIS, STRATEGY_GENERIC_JOIN):
                _validated_strategies()
            return Plan(
                query=query,
                strategy=strategy,
                ordering=order,
                backend=backend if backend is not None else "auto",
                estimated_cost=float("nan"),
                faq_width=float("nan"),
            )
        if stats is None:
            stats = QueryStatistics.from_query(query)
        hypergraph = query.hypergraph()
        estimates = [
            model.estimate(query, stats, order, candidate_strategy, hypergraph)
            for candidate_strategy in _validated_strategies()
        ]
        winner = _pick(estimates)
        return Plan(
            query=query,
            strategy=winner.strategy,
            ordering=order,
            backend=backend if backend is not None else winner.backend,
            estimated_cost=winner.total_cost,
            faq_width=winner.faq_width,
            estimate=winner,
            candidates=estimates,
            step_sizes=_plan_step_sizes(winner),
        )

    # ------------------------------------------------------------------ #
    # cache lookup — before any stats collection or applicability scan, so
    # a hit on repeated query traffic costs only the signature itself.
    # Caller-supplied statistics or cost models make the plan bespoke: the
    # cache key encodes neither, so such plans neither read nor populate
    # the cache (which also keeps throwaway CostModel instances, and the
    # hypergraphs/LP memos they pin, from being retained by cache entries).
    # ------------------------------------------------------------------ #
    use_cache = use_cache and stats is None and cost_model is None
    signature, canon = query_signature(query)
    key = (signature, mode, strategy, backend)
    if use_cache:
        cached = plan_cache.lookup(key)
        drifted = False
        if cached is None:
            # Same structure, drifted data: transfer the plan when the
            # per-factor size buckets moved at most one step; beyond that
            # the stored entry is invalidated (its cost choices are stale).
            cached = plan_cache.lookup_drifted(key)
            drifted = cached is not None
        if cached is not None and len(cached.ordering_indices) == query.num_variables:
            # An exact signature hit certifies isomorphism (including the
            # indicator bit join strategies depend on), so the cached
            # strategy and ordering transfer without re-validation.  A
            # *drifted* transfer is only shape-certified: the bucket change
            # can perturb the canonical labelling, so the transferred
            # ordering is checked for EVO membership before it is trusted
            # (an invalid one falls through to the ordinary search).
            order = ordering_from_indices(cached.ordering_indices, canon)
            valid = True
            if drifted:
                valid = set(order[: query.num_free]) == set(query.free)
                if valid and order != tuple(query.order):
                    try:
                        valid = is_equivalent_ordering(query, order)
                    except Exception:  # pragma: no cover - defensive
                        valid = False
                if valid:
                    # Re-store under the new exact key; buckets=() makes
                    # store() backfill this signature's own buckets.
                    plan_cache.store(key, replace(cached, buckets=()))
            if valid:
                return Plan(
                    query=query,
                    strategy=cached.strategy,
                    ordering=order,
                    backend=cached.backend,
                    estimated_cost=cached.estimated_cost,
                    faq_width=cached.faq_width,
                    signature=signature,
                    cache_hit=True,
                    step_sizes=cached.step_sizes,
                    cache_key=key,
                    drifted=drifted,
                )

    # ------------------------------------------------------------------ #
    # candidate search
    # ------------------------------------------------------------------ #
    if stats is None:
        stats = QueryStatistics.from_query(query)
    hypergraph = query.hypergraph()
    strategies = _validated_strategies()
    if mode == "auto":
        try:
            candidates = [tuple(approximate_faqw_ordering(query))]
        except Exception:  # pragma: no cover - defensive
            candidates = [tuple(query.order)]
    else:
        candidates = candidate_orderings(query, hypergraph)
    if not candidates:
        candidates = [tuple(query.order)]

    estimates: List[OrderingEstimate] = []
    for candidate_strategy in strategies:
        if candidate_strategy in (STRATEGY_YANNAKAKIS, STRATEGY_GENERIC_JOIN):
            # Their cost does not depend on the elimination ordering.
            estimates.append(
                model.estimate(query, stats, candidates[0], candidate_strategy, hypergraph)
            )
            continue
        for candidate in candidates:
            estimates.append(
                model.estimate(query, stats, candidate, candidate_strategy, hypergraph)
            )
    winner = _pick(estimates)
    resolved_backend = backend if backend is not None else winner.backend
    step_sizes = _plan_step_sizes(winner)

    result = Plan(
        query=query,
        strategy=winner.strategy,
        ordering=winner.ordering,
        backend=resolved_backend,
        estimated_cost=winner.total_cost,
        faq_width=winner.faq_width,
        signature=signature,
        estimate=winner,
        candidates=estimates,
        step_sizes=step_sizes,
        cache_key=key if use_cache else None,
    )
    if use_cache:
        plan_cache.store(
            key,
            CachedPlan(
                strategy=result.strategy,
                backend=resolved_backend,
                ordering_indices=ordering_to_indices(result.ordering, canon),
                estimated_cost=result.estimated_cost,
                faq_width=result.faq_width,
                step_sizes=step_sizes,
            ),
        )
    return result


def _pick(estimates: List[OrderingEstimate]) -> OrderingEstimate:
    """The cheapest estimate, with a deterministic tie-break."""
    return min(
        estimates,
        key=lambda e: (e.total_cost, _STRATEGY_RANK[e.strategy], e.ordering),
    )


def _plan_step_sizes(winner: OrderingEstimate) -> Tuple[float, ...]:
    """The per-step size estimates worth comparing against a run's stats.

    Only the InsideOut strategy executes the step sequence the cost model
    simulated (``InsideOutStats.steps`` aligns with the estimate's steps),
    so only its plans carry sizes into the feedback loop.
    """
    if winner.strategy != STRATEGY_INSIDEOUT:
        return ()
    return tuple(s.est_size for s in winner.steps)


# ---------------------------------------------------------------------- #
# the feedback loop — closing plan → execute → observe → re-plan
# ---------------------------------------------------------------------- #
@dataclass
class PlanFeedback:
    """What one run's statistics did to the planner state."""

    errors: Tuple[float, ...]  # signed per-step log(observed/estimated)
    worst: float               # max |error| of the run (0.0 when no errors)
    replanned: bool            # True when the cached plan was invalidated


def record_plan_feedback(
    executed_plan: Plan,
    stats,
    *,
    cache: Optional[PlanCache] = None,
    cost_model: Optional[CostModel] = None,
) -> PlanFeedback:
    """Close the planning loop with the statistics of an executed plan.

    ``stats`` is the ``InsideOutStats`` of the run that executed
    ``executed_plan`` (``PlanResult.stats``).  The observed per-step result
    sizes are compared against the plan's estimates
    (:func:`repro.planner.cost.observed_step_errors`); the signed errors

    * calibrate the cost model (:meth:`CostModel.observe`) — the same
      effective model :func:`plan` would score with for this ``cache`` /
      ``cost_model`` pair, so future searches see corrected estimates; and
    * accumulate into the cached plan's :class:`~repro.planner.cache.PlanHealth`
      (:meth:`PlanCache.record_feedback`) when the plan came from (or was
      stored into) the cache — a plan whose error EWMA crosses the replan
      threshold is invalidated, and the next occurrence of the query
      re-plans against the calibrated model.

    Plans that bypassed the cache (pinned orderings, bespoke stats/models)
    still calibrate the model; they just have no entry to invalidate.
    """
    errors = tuple(observed_step_errors(executed_plan.step_sizes, stats))
    if not errors:
        return PlanFeedback(errors=(), worst=0.0, replanned=False)
    plan_cache = cache if cache is not None else DEFAULT_PLAN_CACHE
    model = cost_model
    if model is None:
        model = getattr(plan_cache, "cost_model", None)
    if model is None:
        model = DEFAULT_COST_MODEL
    model.observe(executed_plan.strategy, errors)
    replanned = False
    if executed_plan.cache_key is not None:
        replanned = plan_cache.record_feedback(
            executed_plan.cache_key, errors, drifted=executed_plan.drifted
        )
    return PlanFeedback(
        errors=errors, worst=max(abs(e) for e in errors), replanned=replanned
    )


def execute(
    query: FAQQuery,
    stats: Optional[QueryStatistics] = None,
    *,
    output_mode: str = "listing",
    workers: Optional[int] = None,
    **kwargs,
) -> PlanResult:
    """Plan and execute ``query`` in one call (see :func:`plan` for kwargs).

    ``workers`` is an execution argument, not a planning one: it opts the
    chosen plan into the parallel step-DAG executor (InsideOut strategy
    only; see :meth:`~repro.planner.plan.Plan.execute`).
    """
    if output_mode != "listing":
        kwargs.setdefault("strategy", STRATEGY_INSIDEOUT)
    return plan(query, stats, **kwargs).execute(output_mode=output_mode, workers=workers)

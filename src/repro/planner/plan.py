"""The :class:`Plan` value object: a chosen strategy, ordering and backend.

A plan is produced by :func:`repro.planner.planner.plan` and executed with
:meth:`Plan.execute`, which dispatches to the engine the planner selected:

* ``"insideout"`` — :func:`repro.core.insideout.inside_out` (the general
  FAQ algorithm, any query);
* ``"variable-elimination"`` — the textbook baseline of
  :func:`repro.core.variable_elimination.variable_elimination` (FAQ-SS
  queries plus product aggregates);
* ``"yannakakis"`` — :func:`repro.db.yannakakis.yannakakis` (α-acyclic
  all-free indicator queries, i.e. natural joins);
* ``"generic-join"`` — :func:`repro.db.generic_join.generic_join`
  (cyclic all-free indicator queries).

:meth:`Plan.explain` renders a human-readable report of what was chosen and
why, including the scored runner-up candidates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.core.query import FAQQuery, QueryError
from repro.factors.factor import Factor
from repro.planner.cost import (
    OrderingEstimate,
    STRATEGY_GENERIC_JOIN,
    STRATEGY_INSIDEOUT,
    STRATEGY_VARIABLE_ELIMINATION,
    STRATEGY_YANNAKAKIS,
)
from repro.semiring.base import Semiring


@dataclass
class PlanResult:
    """The result of executing a plan — the surface of ``InsideOutResult``.

    ``raw`` keeps the underlying engine result (with its native stats) for
    callers that want strategy-specific detail.
    """

    plan: "Plan"
    factor: Optional[Factor]
    ordering: Tuple[str, ...]
    factorized: Any = None
    raw: Any = None

    @property
    def stats(self) -> Any:
        """The underlying engine's stats object, when it has one."""
        return getattr(self.raw, "stats", None)

    @property
    def scalar(self) -> Any:
        """The scalar value for queries with no free variables."""
        if self.factor is None:
            raise QueryError("scalar access requires listing output mode")
        if self.factor.scope:
            raise QueryError("query has free variables; use .factor")
        return self.factor.table.get((), None)

    def scalar_or_zero(self, semiring: Semiring) -> Any:
        """The scalar value, or the semiring zero if the output is empty."""
        if self.factor is None:
            raise QueryError("scalar access requires listing output mode")
        return self.factor.table.get((), semiring.zero)


@dataclass
class Plan:
    """An executable query plan chosen by the cost-based planner."""

    query: FAQQuery
    strategy: str
    ordering: Tuple[str, ...]
    backend: str
    estimated_cost: float
    faq_width: float
    signature: Optional[tuple] = None
    cache_hit: bool = False
    estimate: Optional[OrderingEstimate] = None
    candidates: List[OrderingEstimate] = field(default_factory=list)
    planning_seconds: float = 0.0
    # Closed-loop planning (see repro.planner.planner.record_plan_feedback):
    # the per-step estimated result sizes stored with the cached plan entry,
    # the cache key the plan was served/stored under, and whether it was
    # transferred across a shape drift (drifted plans demote first).
    step_sizes: Tuple[float, ...] = ()
    cache_key: Optional[tuple] = None
    drifted: bool = False

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def execute(
        self,
        output_mode: str = "listing",
        workers: int | str | None = None,
        workers_mode: str = "thread",
        shared_tries: Any = None,
        step_cache: Any = None,
    ) -> PlanResult:
        """Run the plan and return the output over the free variables.

        ``workers`` opts the InsideOut strategy into the parallel step-DAG
        executor (:mod:`repro.exec`); ``workers_mode="process"`` swaps its
        thread pool for shared-memory worker processes so the sparse
        kernels escape the GIL.  The other strategies always execute
        serially — per-query parallelism for them comes from batching whole
        queries through :mod:`repro.serve`.  ``shared_tries`` passes a
        :class:`~repro.factors.index.SharedTrieCache` of this query's
        base-factor tries (the serving layer reuses one across repeated
        identical queries); ``step_cache`` a
        :class:`~repro.exec.StepResultCache` of content-addressed step
        results (shared elimination prefixes replay instead of
        recomputing).  Both are InsideOut-only accelerations and are
        ignored by the other strategies.
        """
        if self.strategy == STRATEGY_INSIDEOUT:
            from repro.core.insideout import inside_out

            result = inside_out(
                self.query,
                ordering=list(self.ordering),
                output_mode=output_mode,
                backend=self.backend,
                workers=workers,
                workers_mode=workers_mode,
                shared_tries=shared_tries,
                step_cache=step_cache,
            )
            return PlanResult(
                plan=self,
                factor=result.factor,
                factorized=result.factorized,
                ordering=result.ordering,
                raw=result,
            )
        if output_mode != "listing":
            raise QueryError(
                f"output mode {output_mode!r} requires the insideout strategy"
            )
        if self.strategy == STRATEGY_VARIABLE_ELIMINATION:
            from repro.core.variable_elimination import variable_elimination

            result = variable_elimination(
                self.query, ordering=list(self.ordering), backend=self.backend
            )
            return PlanResult(
                plan=self, factor=result.factor, ordering=result.ordering, raw=result
            )
        if self.strategy == STRATEGY_YANNAKAKIS:
            return self._execute_yannakakis()
        if self.strategy == STRATEGY_GENERIC_JOIN:
            return self._execute_generic_join()
        raise QueryError(f"unknown plan strategy {self.strategy!r}")

    def _relations(self):
        from repro.db.relation import Relation

        return [
            Relation(factor.name or f"psi{i}", factor.scope, factor.table.keys())
            for i, factor in enumerate(self.query.factors)
        ]

    def _execute_yannakakis(self) -> PlanResult:
        from repro.db.yannakakis import yannakakis

        free = list(self.query.free)
        relation = yannakakis(self._relations(), output_attributes=free)
        one = self.query.semiring.one
        factor = Factor(
            tuple(free), {row: one for row in relation.tuples}, name=f"{self.query.name}(out)"
        )
        return PlanResult(plan=self, factor=factor, ordering=self.ordering, raw=relation)

    def _execute_generic_join(self) -> PlanResult:
        from repro.db.generic_join import generic_join

        relation = generic_join(self._relations(), attribute_order=list(self.ordering))
        one = self.query.semiring.one
        factor = Factor(
            relation.schema, {row: one for row in relation.tuples}, name=f"{self.query.name}(out)"
        ).normalize_scope(self.query.free)
        return PlanResult(plan=self, factor=factor, ordering=self.ordering, raw=relation)

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def explain(self) -> str:
        """A human-readable report of the chosen plan.

        The report shows the selected strategy/ordering/backend, the
        estimated cost and FAQ-width, the per-step size estimates, and the
        scored candidates the winner was chosen from (see the README's
        planner section for how to read it).
        """
        lines = [
            f"plan for {self.query!r}",
            f"  strategy : {self.strategy}",
            f"  ordering : {' -> '.join(self.ordering) if self.ordering else '(none)'}",
            f"  backend  : {self.backend}",
            f"  est cost : {self.estimated_cost:.1f} (faqw ~ {self.faq_width:.2f})",
            f"  source   : {'plan cache hit' if self.cache_hit else 'cost-based search'}",
            f"  planned  : {self.planning_seconds * 1e3:.2f} ms",
        ]
        if self.estimate is not None and self.estimate.steps:
            lines.append("  steps:")
            for step in self.estimate.steps:
                box = "inf" if step.box_cells == float("inf") else f"{step.box_cells:.0f}"
                lines.append(
                    f"    eliminate {step.variable:<12} kind={step.kind:<8} "
                    f"|U|={len(step.induced):<2} rho*={step.rho_star:.2f} "
                    f"box={box} est={step.cost:.1f} backend={step.backend}"
                )
        if self.candidates:
            lines.append("  candidates considered:")
            for candidate in sorted(self.candidates, key=lambda c: c.total_cost):
                marker = "*" if (
                    candidate.strategy == self.strategy
                    and candidate.ordering == self.ordering
                ) else " "
                lines.append(
                    f"   {marker} {candidate.strategy:<20} cost={candidate.total_cost:<12.1f} "
                    f"faqw={candidate.faq_width:.2f} backend={candidate.backend:<6} "
                    f"ordering={','.join(candidate.ordering)}"
                )
        return "\n".join(lines)

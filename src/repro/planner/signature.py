"""Structural query signatures for plan caching.

The :class:`~repro.planner.cache.PlanCache` must recognise a query it has
planned before even when the *data* changed (repeated query traffic over
drifting relations) or the *variable names* changed (isomorphic queries).
This module computes a canonical labelling of the query's structure:

* each variable's seed colour is ``(tag, aggregate block, |Dom|)`` — the
  aggregate *block* is the index of the maximal run of identical aggregate
  tags in the written bound order, which is exactly the granularity at which
  reordering is always semantics-preserving (adjacent identical aggregates
  commute; distinct blocks do not);
* colours are refined Weisfeiler–Leman style against the multiset of
  incident factor-edge signatures (member colours plus a log-bucketed factor
  size, so mild data drift still hits the cache);
* the final signature serialises the *entire* structure under the canonical
  labelling.  Two queries with equal signatures are therefore certifiably
  isomorphic via their canonical labellings — colour-refinement
  incompleteness can only cause a missed cache hit, never a wrong one —
  so a cached variable ordering can be transferred index-by-index and
  remains a member of ``EVO`` of the new query.
"""

from __future__ import annotations

import hashlib
import weakref
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.query import FAQQuery

_REFINEMENT_ROUNDS = 3

SIGNATURE_VERSION = 2
"""Format version of :func:`query_signature` tuples and cached-plan payloads.

Bump whenever the signature layout — or the :class:`~repro.planner.cache.CachedPlan`
payload stored under it — changes: persisted plan caches
(:meth:`repro.planner.cache.PlanCache.save`) are tagged with this version
and silently discarded on mismatch, so stale on-disk plans can never be
deserialised against a new signature scheme.  Version 2: ``CachedPlan``
gained ``step_sizes`` (the planner feedback loop).
"""

_INDICATOR_MEMO: "weakref.WeakKeyDictionary[FAQQuery, bool]" = weakref.WeakKeyDictionary()


def size_bucket(size: int) -> int:
    """Log2 bucket of a factor size (0 → 0, 1 → 1, 2-3 → 2, 4-7 → 3, ...)."""
    return int(size).bit_length()


def _aggregate_blocks(query: FAQQuery) -> Dict[str, int]:
    """Map each variable to its aggregate block index (free variables: 0).

    Bound variables are grouped into maximal runs of identical aggregate
    tags along the written order; block boundaries are the only ordering
    constraints the signature must preserve exactly.
    """
    blocks: Dict[str, int] = {v: 0 for v in query.free}
    index = 0
    previous_tag = None
    for variable in query.bound:
        tag = query.tag(variable)
        if tag != previous_tag:
            index += 1
            previous_tag = tag
        blocks[variable] = index
    return blocks


def canonical_order(query: FAQQuery) -> List[str]:
    """The query's variables in canonical (colour-refined) order.

    Ties that survive refinement break on the written position, which keeps
    the labelling deterministic; a tie between genuinely asymmetric
    variables merely yields a different serialisation (a cache miss), never
    an unsound match.
    """
    blocks = _aggregate_blocks(query)
    colors: Dict[str, tuple] = {
        v: (query.tag(v), blocks[v], query.domain_size(v)) for v in query.order
    }
    edges = [(tuple(f.scope), size_bucket(len(f))) for f in query.factors]

    for _ in range(min(_REFINEMENT_ROUNDS, len(query.order))):
        edge_colors = [
            (tuple(sorted(colors[v] for v in scope)), bucket) for scope, bucket in edges
        ]
        new_colors: Dict[str, tuple] = {}
        for variable in query.order:
            incident = sorted(
                color for (scope, _), color in zip(edges, edge_colors) if variable in scope
            )
            new_colors[variable] = (colors[variable], tuple(incident))
        if len(set(new_colors.values())) == len(set(colors.values())):
            colors = new_colors
            break
        colors = new_colors

    position = {v: i for i, v in enumerate(query.order)}
    return sorted(query.order, key=lambda v: (colors[v], position[v]))


def is_indicator_join(query: FAQQuery) -> bool:
    """Whether this is an all-free query of covering indicator (0/1) factors.

    This is exactly the shape the relational strategies (Yannakakis /
    generic join) apply to: every variable free and mentioned by some
    factor, no empty scopes, and every factor value equal to the semiring
    one.  Strategy applicability depends on the factor *values*, which the
    purely structural part of the signature cannot see — folding this bit
    into the signature keeps indicator and weighted variants of the same
    shape in separate cache entries, so a cached join-strategy plan can
    never transfer to a query it would compute wrong values for.

    The O(input) value scan only runs for all-free queries and is memoised
    per query instance (queries are immutable after construction), so the
    signature and the planner's applicability check share one scan.
    """
    cached = _INDICATOR_MEMO.get(query)
    if cached is not None:
        return cached
    result = _compute_indicator_join(query)
    _INDICATOR_MEMO[query] = result
    return result


def _compute_indicator_join(query: FAQQuery) -> bool:
    if query.num_free != query.num_variables or query.num_variables == 0:
        return False
    if not query.factors:
        return False
    semiring = query.semiring
    mentioned = set()
    for factor in query.factors:
        if not factor.scope:
            return False
        mentioned.update(factor.scope)
        for value in factor.table.values():
            if not semiring.is_one(value):
                return False
    return mentioned == set(query.order)


def query_signature(query: FAQQuery) -> Tuple[tuple, List[str]]:
    """The cache signature of a query plus its canonical variable order.

    Returns ``(signature, canon)`` where ``signature`` is a hashable full
    serialisation of the query structure under the canonical labelling and
    ``canon`` lists the variables in canonical order (``canon[i]`` is the
    variable behind canonical index ``i``).
    """
    canon = canonical_order(query)
    index = {v: i for i, v in enumerate(canon)}
    blocks = _aggregate_blocks(query)
    variables = tuple(
        (query.tag(v), blocks[v], query.domain_size(v)) for v in canon
    )
    factors = tuple(
        sorted(
            (tuple(sorted(index[v] for v in f.scope)), size_bucket(len(f)))
            for f in query.factors
        )
    )
    signature = (
        query.semiring.name,
        query.num_free,
        is_indicator_join(query),
        variables,
        factors,
    )
    return signature, canon


def signature_shape(signature: tuple) -> Tuple[tuple, Tuple[int, ...]]:
    """Split a signature into its data-free *shape* and the size buckets.

    The shape is the signature with every factor's log2 size bucket zeroed
    out; the buckets are returned in the factors' canonical order.  Two
    queries with equal shapes are structurally identical up to data volume
    — exactly the situation "the same query over drifted relations"
    produces — so the plan cache can transfer a plan between them when the
    per-factor drift stays within :func:`bucket_drift`'s tolerance.
    """
    semiring, num_free, indicator, variables, factors = signature
    shape = (semiring, num_free, indicator, variables, tuple(s for s, _ in factors))
    buckets = tuple(b for _, b in factors)
    return shape, buckets


def bucket_drift(a: Sequence[int], b: Sequence[int]) -> Optional[int]:
    """The largest per-factor bucket distance (``None`` if incomparable)."""
    if len(a) != len(b):
        return None
    return max((abs(x - y) for x, y in zip(a, b)), default=0)


# ---------------------------------------------------------------------- #
# stable cross-process content hashes
# ---------------------------------------------------------------------- #
# The in-process plan cache keys on hashable signature *tuples*; the
# replicated serving tier (:mod:`repro.serve`) keys on hex *digests* that
# must agree between processes.  Python's builtin ``hash`` is salted per
# process (PYTHONHASHSEED), so the digests below are built from an explicit
# canonical byte encoding instead.

CONTENT_KEY_VERSION = 1
"""Format version folded into every content digest.

Bump together with :data:`SIGNATURE_VERSION` whenever the canonical byte
encoding (or what it covers) changes, so digests computed by an old process
can never alias digests of a new one across a rolling restart.
"""


def canonical_bytes(value: Any) -> bytes:
    """A deterministic, process-independent byte encoding of plain data.

    Supports the value shapes that occur in signatures, factor tables and
    variable domains: ``None``, bools, ints, floats, complex, strings,
    bytes, and (frozen)sets/sequences thereof.  The encoding is injective
    per type (every atom is length-prefixed and type-tagged) and
    canonicalises sets by sorting their encoded elements, so equal values
    encode equally in every process.  Unsupported types raise ``TypeError``
    — callers (the serving tier) degrade gracefully.
    """
    if value is None:
        return b"N"
    if isinstance(value, bool):  # before int: bool subclasses int
        return b"T" if value else b"F"
    if isinstance(value, int):
        raw = str(value).encode("ascii")
        return b"i%d:%s" % (len(raw), raw)
    if isinstance(value, float):
        raw = repr(value).encode("ascii")  # repr is shortest-roundtrip, stable
        return b"f%d:%s" % (len(raw), raw)
    if isinstance(value, complex):
        raw = repr(value).encode("ascii")
        return b"c%d:%s" % (len(raw), raw)
    if isinstance(value, str):
        raw = value.encode("utf-8")
        return b"s%d:%s" % (len(raw), raw)
    if isinstance(value, (bytes, bytearray)):
        return b"b%d:%s" % (len(value), bytes(value))
    if isinstance(value, (frozenset, set)):
        parts = sorted(canonical_bytes(v) for v in value)
        return b"S(" + b",".join(parts) + b")"
    if isinstance(value, (tuple, list)):
        return b"(" + b",".join(canonical_bytes(v) for v in value) + b")"
    raise TypeError(f"no canonical byte encoding for {type(value).__name__!r}")


def _digest(*chunks: bytes) -> str:
    h = hashlib.sha256()
    h.update(b"repro-content-v%d" % CONTENT_KEY_VERSION)
    for chunk in chunks:
        h.update(b"|")
        h.update(chunk)
    return h.hexdigest()


def signature_digest(signature: tuple) -> str:
    """A stable hex digest of a :func:`query_signature` tuple.

    Unlike ``hash(signature)`` this agrees across processes and interpreter
    restarts, so it can key cross-process caches and wire protocols.
    """
    return _digest(b"sig", canonical_bytes(signature))


def factor_digest(factor: Any) -> str:
    """A stable content digest of one factor (scope, name excluded).

    Keyed on the scope *names* plus the sorted non-default table entries,
    so two value-equal factors — distinct objects, different processes —
    digest identically, and any changed cell changes the digest.  Dense
    ndarray factors digest their domains and raw cells without a listing
    round trip.  Memoised on the factor, so the O(input) hash is paid once
    per factor object.

    Digesting **freezes** the factor: every digest-keyed cache (step
    results, shared tries, completed serve results) relies on the digest
    certifying the table content forever, so in-place mutation after this
    point raises instead of silently serving stale answers.  The supported
    update path is ``Factor.apply_delta``, which returns a new factor with
    a new digest.
    """
    cached = getattr(factor, "_digest", None)
    if cached is not None:
        return cached
    digest = _compute_factor_digest(factor)
    try:
        factor._digest = digest
    except AttributeError:  # foreign factor-like object without the slot
        pass
    freeze = getattr(factor, "freeze", None)
    if callable(freeze):
        freeze()
    return digest


def _compute_factor_digest(factor: Any) -> str:
    from repro.factors.dense import DenseFactor

    if isinstance(factor, DenseFactor):
        domains = tuple(factor.domains[v] for v in factor.scope)
        return _digest(
            b"dense",
            canonical_bytes(tuple(factor.scope)),
            canonical_bytes(domains),
            str(factor.array.dtype).encode("ascii"),
            factor.array.tobytes(),
        )
    items = sorted(
        (canonical_bytes(key) + b"=" + canonical_bytes(value))
        for key, value in factor.table.items()
    )
    return _digest(
        b"sparse", canonical_bytes(tuple(factor.scope)), b";".join(items)
    )


_CONTENT_KEY_MEMO: "weakref.WeakKeyDictionary[FAQQuery, str]" = weakref.WeakKeyDictionary()


def query_content_key(query: FAQQuery) -> str:
    """The stable content digest of a query — equal iff queries are value-equal.

    Combines the canonical WL signature (structure) with the exact
    variable/domain/aggregate spelling and a :func:`factor_digest` per
    factor, so *value-equal* queries from different clients or processes
    share one key while isomorphic-but-renamed queries (whose outputs name
    different variables) do not.  This is the coalescing key of the serving
    tier: two requests with equal keys are certifiably answerable by one
    execution.

    Memoised per query instance (queries are immutable after construction);
    raises ``TypeError`` for queries whose domains or factor values have no
    canonical encoding — callers fall back to not coalescing.
    """
    cached = _CONTENT_KEY_MEMO.get(query)
    if cached is not None:
        return cached
    signature, _ = query_signature(query)
    spelling = (
        query.semiring.name,
        tuple(query.order),
        tuple(query.free),
        tuple((v, query.tag(v)) for v in query.bound),
        tuple((v, query.domain(v)) for v in query.order),
    )
    factor_part = ";".join(sorted(factor_digest(f) for f in query.factors))
    key = _digest(
        b"query",
        signature_digest(signature).encode("ascii"),
        canonical_bytes(spelling),
        factor_part.encode("ascii"),
    )
    _CONTENT_KEY_MEMO[query] = key
    return key


_SHARING_KEY_MEMO: "weakref.WeakKeyDictionary[FAQQuery, str]" = weakref.WeakKeyDictionary()


def query_sharing_key(query: FAQQuery) -> str:
    """A digest of the query's semiring plus factor *set* (order-insensitive).

    Two queries with equal sharing keys evaluate over the same factor
    content under the same algebra, which is the precondition for their
    elimination steps to collide in the content-addressed step IR.  The
    serving tier routes on this key so overlapping queries land on the
    replica whose step cache already holds their shared prefixes.  Raises
    ``TypeError`` for factors without a canonical encoding.
    """
    cached = _SHARING_KEY_MEMO.get(query)
    if cached is not None:
        return cached
    factor_part = ";".join(sorted(factor_digest(f) for f in query.factors))
    key = _digest(
        b"sharing",
        canonical_bytes(query.semiring.name),
        factor_part.encode("ascii"),
    )
    _SHARING_KEY_MEMO[query] = key
    return key


def ordering_to_indices(ordering: Sequence[str], canon: Sequence[str]) -> Tuple[int, ...]:
    """Translate a variable ordering into canonical indices for storage."""
    index = {v: i for i, v in enumerate(canon)}
    return tuple(index[v] for v in ordering)


def ordering_from_indices(indices: Sequence[int], canon: Sequence[str]) -> Tuple[str, ...]:
    """Translate stored canonical indices back into this query's variables."""
    return tuple(canon[i] for i in indices)

"""A small thread-safe LRU used by the process-wide memo caches.

Both the planner's :class:`~repro.planner.cache.PlanCache` and the
process-wide ``ρ*`` memo of :mod:`repro.hypergraph.covers` need the same
thing: a bounded mapping with least-recently-used eviction, hit/miss
counters, and safety under the worker pools introduced by
:mod:`repro.exec` and :mod:`repro.serve` (planning and execution now run
concurrently against the shared caches).  This module is deliberately
dependency-free so that both layers can import it without cycles.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from typing import Any, Hashable, Iterator, List, Tuple

_MISSING = object()


class LruCache:
    """A bounded least-recently-used mapping with hit/miss counters.

    All operations take an internal lock, so a single instance can back a
    process-wide memo that worker threads read and populate concurrently.
    Counters are exact under concurrency (they are only touched while the
    lock is held).
    """

    def __init__(self, maxsize: int = 1024) -> None:
        if maxsize < 1:
            raise ValueError(f"LruCache needs maxsize >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._lock = threading.RLock()
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: Hashable, default: Any = None) -> Any:
        """The value for ``key`` (counted + marked most recently used)."""
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                return default
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """``get`` without touching LRU order or the counters."""
        with self._lock:
            value = self._entries.get(key, _MISSING)
            return default if value is _MISSING else value

    def put(self, key: Hashable, value: Any) -> List[Tuple[Hashable, Any]]:
        """Insert (or refresh) an entry; returns the evicted ``(key, value)``
        pairs so callers keeping secondary indexes can clean them up."""
        evicted: List[Tuple[Hashable, Any]] = []
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                evicted.append(self._entries.popitem(last=False))
        return evicted

    def pop(self, key: Hashable, default: Any = None) -> Any:
        with self._lock:
            return self._entries.pop(key, default)

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def items(self) -> Iterator[Tuple[Hashable, Any]]:
        """A snapshot of the entries, least recently used first."""
        with self._lock:
            return iter(list(self._entries.items()))

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def dump_entries(self, *, kind: str, version: int) -> dict:
        """The in-memory form of :meth:`save`'s envelope.

        Used by the shared-memory cache store (:mod:`repro.exec.shm`) to
        publish a snapshot across a replica fleet without touching disk;
        the same kind/version tags gate adoption.
        """
        with self._lock:
            entries = list(self._entries.items())
        return {"kind": kind, "version": version, "entries": entries}

    def adopt_entries(self, payload, *, kind: str, version: int) -> int:
        """Best-effort merge of a :meth:`dump_entries` envelope.

        Mirrors :meth:`load`'s contract: a payload of the wrong shape,
        kind or version adopts nothing; returns the number of entries
        merged.
        """
        try:
            if (
                not isinstance(payload, dict)
                or payload.get("kind") != kind
                or payload.get("version") != version
            ):
                return 0
            count = 0
            for key, value in list(payload.get("entries", [])):
                self.put(key, value)
                count += 1
            return count
        except Exception:
            return 0

    def save(self, path, *, kind: str, version: int) -> int:
        """Pickle the entries to ``path`` tagged with a kind + format version.

        Returns the number of entries written.  The tag is checked by
        :meth:`load`, so bumping ``version`` invalidates every persisted
        file of that kind at once.  The write is **atomic** (temp file +
        ``os.replace``, so a crash mid-save leaves the previous file
        intact) and **checksummed**: the entries travel as one pickled
        blob whose SHA-256 is stored alongside, so :meth:`load` rejects a
        torn or bit-rotted file instead of adopting garbage.
        """
        with self._lock:
            entries = list(self._entries.items())
        blob = pickle.dumps(entries, protocol=pickle.HIGHEST_PROTOCOL)
        payload = {
            "kind": kind,
            "version": version,
            "entries_blob": blob,
            "sha256": hashlib.sha256(blob).hexdigest(),
        }
        path = os.fspath(path)
        fd, tmp_path = tempfile.mkstemp(
            dir=os.path.dirname(path) or ".", prefix=os.path.basename(path), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        return len(entries)

    def load(self, path, *, kind: str, version: int) -> int:
        """Merge entries persisted by :meth:`save` into this cache.

        Entries with a mismatched kind or format version are ignored (the
        file is simply stale); returns the number of entries merged.
        Existing entries for the same keys are refreshed.
        """
        # Best-effort by contract: a missing, truncated, corrupt or
        # stale-format file (including unpicklable entries whose classes
        # moved between releases — the version tag can only be checked
        # *after* pickle has instantiated them) must never crash the
        # loading process; it is simply ignored.
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
            if not isinstance(payload, dict):
                return 0
            if payload.get("kind") != kind or payload.get("version") != version:
                return 0
            blob = payload.get("entries_blob")
            if blob is not None:
                # Checksummed format: verify before unpickling the entries.
                if hashlib.sha256(blob).hexdigest() != payload.get("sha256"):
                    return 0
                entries = list(pickle.loads(blob))
            else:
                # Legacy format (pre-checksum files): entries inline.
                entries = list(payload.get("entries", []))
            count = 0
            for key, value in entries:
                self.put(key, value)
                count += 1
            return count
        except Exception:
            return 0

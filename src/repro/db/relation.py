"""The :class:`Relation` class — a named set of tuples over a schema."""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterable, Iterator, Sequence, Set, Tuple

from repro.factors.factor import Factor
from repro.semiring.base import Semiring


class RelationError(ValueError):
    """Raised on schema mismatches and malformed relational operations."""


class Relation:
    """A relation: an attribute schema plus a set of tuples.

    Tuples are plain python tuples aligned with the schema.  Relations are
    immutable after construction (operations return new relations), which
    keeps the join algorithms free of aliasing surprises.
    """

    __slots__ = ("name", "schema", "tuples")

    def __init__(self, name: str, schema: Sequence[str], tuples: Iterable[Tuple[Any, ...]]) -> None:
        self.name = name
        self.schema: Tuple[str, ...] = tuple(schema)
        if len(set(self.schema)) != len(self.schema):
            raise RelationError(f"duplicate attributes in schema {self.schema}")
        arity = len(self.schema)
        data: Set[Tuple[Any, ...]] = set()
        for row in tuples:
            row = tuple(row)
            if len(row) != arity:
                raise RelationError(
                    f"tuple {row!r} has arity {len(row)}, schema {self.schema} expects {arity}"
                )
            data.add(row)
        self.tuples: FrozenSet[Tuple[Any, ...]] = frozenset(data)

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        return iter(self.tuples)

    def __contains__(self, row: Tuple[Any, ...]) -> bool:
        return tuple(row) in self.tuples

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Relation({self.name}, schema={self.schema}, size={len(self)})"

    @property
    def attributes(self) -> FrozenSet[str]:
        """The schema as a set."""
        return frozenset(self.schema)

    # ------------------------------------------------------------------ #
    def rows_as_dicts(self) -> Iterator[Dict[str, Any]]:
        """Iterate rows as attribute → value dicts."""
        for row in self.tuples:
            yield dict(zip(self.schema, row))

    def project(self, attributes: Sequence[str], name: str | None = None) -> "Relation":
        """Projection ``π_A(R)`` (duplicates eliminated, set semantics)."""
        missing = [a for a in attributes if a not in self.schema]
        if missing:
            raise RelationError(f"projection attributes {missing} not in schema {self.schema}")
        indices = [self.schema.index(a) for a in attributes]
        rows = {tuple(row[i] for i in indices) for row in self.tuples}
        return Relation(name or f"pi({self.name})", tuple(attributes), rows)

    def select(self, predicate, name: str | None = None) -> "Relation":
        """Selection ``σ_p(R)`` where ``predicate`` receives a row dict."""
        rows = [row for row in self.tuples if predicate(dict(zip(self.schema, row)))]
        return Relation(name or f"sigma({self.name})", self.schema, rows)

    def rename(self, mapping: Dict[str, str], name: str | None = None) -> "Relation":
        """Rename attributes according to ``mapping``."""
        schema = tuple(mapping.get(a, a) for a in self.schema)
        return Relation(name or self.name, schema, self.tuples)

    # ------------------------------------------------------------------ #
    def to_factor(self, semiring: Semiring, name: str | None = None) -> Factor:
        """Encode the relation as a ``0/1`` factor (Appendix A reductions)."""
        table = {row: semiring.one for row in self.tuples}
        return Factor(self.schema, table, name=name or self.name)

    @classmethod
    def from_factor(cls, factor: Factor, name: str | None = None) -> "Relation":
        """The support of a factor as a relation (values are dropped)."""
        return cls(name or factor.name, factor.scope, factor.table.keys())

"""A worst-case optimal multiway join over relations (Generic Join).

This is the relational face of OutsideIn: relations are turned into ``0/1``
factors and the backtracking trie join of :mod:`repro.core.outsidein`
enumerates the natural join attribute by attribute, never materialising an
intermediate larger than the AGM bound.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.outsidein import enumerate_join
from repro.db.relation import Relation, RelationError
from repro.semiring.standard import BOOLEAN


def generic_join(
    relations: Sequence[Relation],
    attribute_order: Sequence[str] | None = None,
    name: str = "join",
) -> Relation:
    """The natural join of ``relations`` via worst-case optimal generic join.

    Parameters
    ----------
    attribute_order:
        The global attribute order used by the backtracking search; defaults
        to a deterministic sorted order.
    """
    if not relations:
        raise RelationError("cannot join an empty list of relations")
    factors = [r.to_factor(BOOLEAN) for r in relations]
    attributes: List[str] = []
    seen = set()
    source = attribute_order if attribute_order is not None else sorted(
        {a for r in relations for a in r.schema}
    )
    for attribute in source:
        if attribute not in seen:
            seen.add(attribute)
            attributes.append(attribute)
    for relation in relations:
        for attribute in relation.schema:
            if attribute not in seen:
                seen.add(attribute)
                attributes.append(attribute)

    rows = []
    for assignment, value in enumerate_join(factors, BOOLEAN, attributes):
        if value:
            rows.append(tuple(assignment[a] for a in attributes))
    return Relation(name, tuple(attributes), rows)

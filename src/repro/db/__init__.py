"""A miniature relational engine used as the database substrate.

The FAQ paper's join-related rows of Table 1 compare InsideOut against the
standard relational tool-chain: pairwise (binary) hash-join plans,
Yannakakis' algorithm for acyclic queries, and worst-case optimal multiway
joins.  This package implements all three from scratch over a simple
set-of-tuples :class:`~repro.db.relation.Relation` so the benchmarks can
measure baseline behaviour without any external database.
"""

from repro.db.relation import Relation, RelationError
from repro.db.hash_join import binary_hash_join, left_deep_join_plan
from repro.db.yannakakis import semijoin, yannakakis
from repro.db.generic_join import generic_join

__all__ = [
    "Relation",
    "RelationError",
    "binary_hash_join",
    "left_deep_join_plan",
    "semijoin",
    "yannakakis",
    "generic_join",
]

"""A miniature relational engine used as the database substrate.

The FAQ paper's join-related rows of Table 1 compare InsideOut against the
standard relational tool-chain: pairwise (binary) hash-join plans,
Yannakakis' algorithm for acyclic queries, and worst-case optimal multiway
joins.  This package implements all three from scratch over a simple
set-of-tuples :class:`~repro.db.relation.Relation` so the benchmarks can
measure baseline behaviour without any external database.
"""

from repro.db.relation import Relation, RelationError
from repro.db.hash_join import binary_hash_join, left_deep_join_plan
from repro.db.yannakakis import semijoin, yannakakis
from repro.db.generic_join import generic_join


def join(relations, output_attributes=None, workers=None):
    """Natural join routed through the cost-based planner.

    The planner (:mod:`repro.planner`) picks the algorithm from estimated
    cost: Yannakakis for α-acyclic queries, worst-case optimal generic join
    for cyclic ones, InsideOut otherwise.  ``output_attributes`` is pushed
    into the query as existential aggregates rather than applied as a
    post-projection, so the work is bounded by the *projected* output.
    Use :func:`yannakakis` or :func:`generic_join` directly to pin an
    algorithm.
    """
    from repro.planner import execute
    from repro.solvers.joins import natural_join_insideout, projected_join_query

    if output_attributes is None:
        return natural_join_insideout(relations, workers=workers)
    query = projected_join_query(relations, output_attributes)
    result = execute(query, workers=workers)
    rows = [key for key, value in result.factor.table.items() if value]
    return Relation("join", result.factor.scope, rows)


__all__ = [
    "Relation",
    "RelationError",
    "binary_hash_join",
    "left_deep_join_plan",
    "semijoin",
    "yannakakis",
    "generic_join",
    "join",
]

"""Pairwise (binary) hash joins and left-deep join plans.

This is the traditional RDBMS execution strategy that worst-case optimal
joins (and InsideOut) improve upon: joins are evaluated two relations at a
time, so cyclic queries such as the triangle query can materialise
intermediate results of size ``Θ(N²)`` even though the final output is only
``O(N^{3/2})`` — exactly the gap the Joins row of Table 1 captures.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

from repro.db.relation import Relation, RelationError


def binary_hash_join(left: Relation, right: Relation, name: str | None = None) -> Relation:
    """The natural join ``left ⋈ right`` via a classic build/probe hash join."""
    shared = [a for a in left.schema if a in right.schema]
    right_only = [a for a in right.schema if a not in left.schema]
    out_schema = left.schema + tuple(right_only)

    left_shared_idx = [left.schema.index(a) for a in shared]
    right_shared_idx = [right.schema.index(a) for a in shared]
    right_only_idx = [right.schema.index(a) for a in right_only]

    buckets: Dict[Tuple[Any, ...], List[Tuple[Any, ...]]] = {}
    for row in right.tuples:
        key = tuple(row[i] for i in right_shared_idx)
        buckets.setdefault(key, []).append(tuple(row[i] for i in right_only_idx))

    rows = []
    for row in left.tuples:
        key = tuple(row[i] for i in left_shared_idx)
        for rest in buckets.get(key, ()):
            rows.append(row + rest)
    return Relation(name or f"({left.name}⋈{right.name})", out_schema, rows)


def left_deep_join_plan(
    relations: Sequence[Relation], order: Sequence[int] | None = None
) -> Tuple[Relation, List[int]]:
    """Evaluate a multiway natural join with a left-deep binary plan.

    Parameters
    ----------
    relations:
        The relations to join.
    order:
        Indices giving the join order.  ``None`` uses a greedy heuristic:
        start from the smallest relation and repeatedly join the relation
        sharing the most attributes with the accumulated schema (ties broken
        by size).

    Returns
    -------
    (result, intermediate_sizes)
        The joined relation plus the size of every intermediate result —
        the quantity the Table 1 Joins benchmark reports to show the
        pairwise plan blowing up on cyclic queries.
    """
    if not relations:
        raise RelationError("cannot join an empty list of relations")
    if order is None:
        remaining = list(range(len(relations)))
        remaining.sort(key=lambda i: len(relations[i]))
        chosen = [remaining.pop(0)]
        acquired = set(relations[chosen[0]].schema)
        while remaining:
            def score(i: int) -> Tuple[int, int]:
                shared = len(set(relations[i].schema) & acquired)
                return (-shared, len(relations[i]))

            nxt = min(remaining, key=score)
            remaining.remove(nxt)
            chosen.append(nxt)
            acquired |= set(relations[nxt].schema)
        order = chosen
    else:
        order = list(order)
        if sorted(order) != list(range(len(relations))):
            raise RelationError("order must be a permutation of the relation indices")

    result = relations[order[0]]
    sizes: List[int] = [len(result)]
    for index in order[1:]:
        result = binary_hash_join(result, relations[index])
        sizes.append(len(result))
    return result, sizes

"""Yannakakis' algorithm for acyclic natural joins.

The paper repeatedly uses Yannakakis' algorithm as the reference point for
α-acyclic queries (it is InsideOut over the Boolean / set semiring, see
Appendix F.1): a full semijoin reduction along a join tree followed by joins
back up the tree runs in ``O~(N + output)``.

It is also one of the execution strategies of the cost-based planner
(:mod:`repro.planner`): all-free indicator FAQ queries whose hypergraph is
α-acyclic are routed here automatically — use :func:`repro.db.join` for the
planner-routed entry point.
"""

from __future__ import annotations

from typing import Dict, Sequence

import networkx as nx

from repro.db.hash_join import binary_hash_join
from repro.db.relation import Relation, RelationError
from repro.hypergraph.acyclicity import join_tree
from repro.hypergraph.hypergraph import Hypergraph


def semijoin(left: Relation, right: Relation) -> Relation:
    """The semijoin ``left ⋉ right``: rows of ``left`` with a match in ``right``."""
    shared = [a for a in left.schema if a in right.schema]
    if not shared:
        return left if len(right) else Relation(left.name, left.schema, [])
    right_keys = right.project(shared).tuples
    left_idx = [left.schema.index(a) for a in shared]
    rows = [row for row in left.tuples if tuple(row[i] for i in left_idx) in right_keys]
    return Relation(left.name, left.schema, rows)


def yannakakis(
    relations: Sequence[Relation], output_attributes: Sequence[str] | None = None
) -> Relation:
    """Evaluate an α-acyclic natural join with Yannakakis' algorithm.

    Phases: (1) build a join tree of the query hypergraph, (2) semijoin-reduce
    leaves-to-root then root-to-leaves, (3) join bottom-up, projecting onto
    the requested output attributes as early as possible.

    Raises
    ------
    RelationError
        If the query hypergraph is not α-acyclic.
    """
    if not relations:
        raise RelationError("cannot join an empty list of relations")
    hypergraph = Hypergraph.from_scopes([r.schema for r in relations])
    tree = join_tree(hypergraph)
    if tree is None:
        raise RelationError("Yannakakis requires an α-acyclic join query")

    # Map each join-tree node (a hyperedge) to the joined relation on it.
    by_edge: Dict[frozenset, Relation] = {}
    for relation in relations:
        edge = relation.attributes
        if edge in by_edge:
            # Multiple relations on identical schemas: intersect via join.
            by_edge[edge] = binary_hash_join(by_edge[edge], relation)
        else:
            by_edge[edge] = relation
    # Relations whose schema is strictly contained in a tree node get folded
    # into that node by a semijoin + join.
    for relation in relations:
        edge = relation.attributes
        if edge in by_edge and by_edge[edge] is relation:
            continue
    nodes = list(tree.nodes)
    for relation in relations:
        if relation.attributes in by_edge:
            continue
        host = next(node for node in nodes if relation.attributes <= node)
        by_edge[host] = binary_hash_join(by_edge[host], relation)

    if tree.number_of_nodes() == 1:
        only = by_edge[nodes[0]]
        if output_attributes is not None:
            return only.project(list(output_attributes))
        return only

    root = nodes[0]
    directed = nx.bfs_tree(tree, root)
    bottom_up = list(reversed(list(nx.topological_sort(directed))))

    # Phase 1: semijoin children into parents (leaves → root).
    for node in bottom_up:
        parents = list(directed.predecessors(node))
        if parents:
            parent = parents[0]
            by_edge[parent] = semijoin(by_edge[parent], by_edge[node])
    # Phase 2: semijoin parents into children (root → leaves).
    for node in nx.topological_sort(directed):
        for child in directed.successors(node):
            by_edge[child] = semijoin(by_edge[child], by_edge[node])

    # Phase 3: join bottom-up with eager projection.
    wanted = set(output_attributes) if output_attributes is not None else None
    result_by_node: Dict[frozenset, Relation] = {}
    for node in bottom_up:
        current = by_edge[node]
        for child in directed.successors(node):
            current = binary_hash_join(current, result_by_node[child])
        if wanted is not None:
            # Keep output attributes plus whatever the remaining ancestors need.
            ancestors_needed = set()
            for ancestor in nx.ancestors(directed, node):
                ancestors_needed |= set(ancestor)
            keep = [a for a in current.schema if a in wanted or a in ancestors_needed]
            current = current.project(keep)
        result_by_node[node] = current
    final = result_by_node[root]
    if output_attributes is not None:
        return final.project(list(output_attributes))
    return final

"""Discrete Markov random fields and their FAQ encodings.

A discrete graphical model over variables ``X_1, ..., X_n`` with factors
``ψ_S : ∏ Dom(X_i) → R+`` defines the unnormalised distribution
``p(x) ∝ ∏_S ψ_S(x_S)``.  The two canonical inference tasks of Example 1.2 /
Appendix A map directly onto FAQ queries:

* **marginal**: ``ϕ(x_F) = Σ_{x not in F} ∏_S ψ_S(x_S)`` — an FAQ-SS query
  over the sum-product semiring,
* **MAP** (max-marginal): replace ``Σ`` with ``max`` — the max-product
  semiring.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro.core.query import FAQQuery, Variable
from repro.factors.factor import Factor
from repro.semiring.aggregates import SemiringAggregate
from repro.semiring.standard import MAX_PRODUCT, SUM_PRODUCT


class PGMError(ValueError):
    """Raised on malformed graphical models or inference requests."""


class DiscreteGraphicalModel:
    """A discrete Markov random field.

    Parameters
    ----------
    domains:
        Mapping from variable name to its finite domain.
    factors:
        Non-negative factors in the listing representation.  Factor scopes
        must only mention declared variables.
    """

    def __init__(self, domains: Mapping[str, Sequence[Any]], factors: Sequence[Factor]) -> None:
        self.domains: Dict[str, Tuple[Any, ...]] = {
            name: tuple(domain) for name, domain in domains.items()
        }
        for name, domain in self.domains.items():
            if not domain:
                raise PGMError(f"variable {name} has an empty domain")
        self.factors: List[Factor] = []
        for factor in factors:
            unknown = [v for v in factor.scope if v not in self.domains]
            if unknown:
                raise PGMError(f"factor {factor.name} mentions unknown variables {unknown}")
            if any(value < 0 for value in factor.table.values()):
                raise PGMError(f"factor {factor.name} has negative entries")
            self.factors.append(factor)

    # ------------------------------------------------------------------ #
    @property
    def variables(self) -> Tuple[str, ...]:
        """The variable names in a deterministic order."""
        return tuple(sorted(self.domains))

    def domain(self, variable: str) -> Tuple[Any, ...]:
        """The domain of ``variable``."""
        return self.domains[variable]

    def unnormalized_probability(self, assignment: Mapping[str, Any]) -> float:
        """``∏_S ψ_S(x_S)`` for a full assignment."""
        value = 1.0
        for factor in self.factors:
            value *= factor.value(assignment, SUM_PRODUCT)
            if value == 0.0:
                return 0.0
        return value

    def condition(self, evidence: Mapping[str, Any]) -> "DiscreteGraphicalModel":
        """Absorb evidence: restrict every factor and drop observed variables."""
        for variable, value in evidence.items():
            if variable not in self.domains:
                raise PGMError(f"evidence on unknown variable {variable}")
            if value not in self.domains[variable]:
                raise PGMError(f"evidence value {value!r} not in Dom({variable})")
        remaining = {v: d for v, d in self.domains.items() if v not in evidence}
        factors = [f.restrict(evidence, SUM_PRODUCT) for f in self.factors]
        return DiscreteGraphicalModel(remaining, factors)

    # ------------------------------------------------------------------ #
    # FAQ encodings
    # ------------------------------------------------------------------ #
    def _ordered_variables(self, free: Sequence[str]) -> List[Variable]:
        free = list(free)
        bound = [v for v in self.variables if v not in free]
        return [Variable(v, self.domains[v]) for v in free + bound]

    def marginal_query(self, free: Sequence[str]) -> FAQQuery:
        """The FAQ-SS query computing the (unnormalised) marginal on ``free``."""
        unknown = [v for v in free if v not in self.domains]
        if unknown:
            raise PGMError(f"unknown query variables {unknown}")
        variables = self._ordered_variables(free)
        bound = [v.name for v in variables[len(free):]]
        aggregates = {v: SemiringAggregate.sum() for v in bound}
        return FAQQuery(
            variables=variables,
            free=list(free),
            aggregates=aggregates,
            factors=self.factors,
            semiring=SUM_PRODUCT,
            name="marginal",
        )

    def map_query(self, free: Sequence[str]) -> FAQQuery:
        """The FAQ-SS query computing max-marginals (marginal MAP) on ``free``."""
        unknown = [v for v in free if v not in self.domains]
        if unknown:
            raise PGMError(f"unknown query variables {unknown}")
        variables = self._ordered_variables(free)
        bound = [v.name for v in variables[len(free):]]
        aggregates = {v: SemiringAggregate.max() for v in bound}
        return FAQQuery(
            variables=variables,
            free=list(free),
            aggregates=aggregates,
            factors=self.factors,
            semiring=MAX_PRODUCT,
            name="map",
        )

    def partition_function_query(self) -> FAQQuery:
        """The FAQ-SS query computing the partition function ``Z``."""
        return self.marginal_query([])

    def hypergraph(self):
        """The model hypergraph (vertices = variables, edges = scopes)."""
        return self.marginal_query([]).hypergraph()

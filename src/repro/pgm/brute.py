"""Brute-force inference for discrete graphical models (ground truth)."""

from __future__ import annotations

import itertools
from typing import Any, Dict, Sequence, Tuple

from repro.pgm.model import DiscreteGraphicalModel


def _full_assignments(model: DiscreteGraphicalModel):
    """Iterate every full assignment of the model's variables."""
    names = model.variables
    for values in itertools.product(*(model.domain(v) for v in names)):
        yield dict(zip(names, values))


def brute_force_partition(model: DiscreteGraphicalModel) -> float:
    """The partition function ``Z = Σ_x ∏_S ψ_S(x_S)`` by full enumeration."""
    return sum(model.unnormalized_probability(a) for a in _full_assignments(model))


def brute_force_marginal(
    model: DiscreteGraphicalModel, variables: Sequence[str]
) -> Dict[Tuple[Any, ...], float]:
    """Unnormalised marginal table over ``variables`` by full enumeration."""
    result: Dict[Tuple[Any, ...], float] = {}
    for assignment in _full_assignments(model):
        weight = model.unnormalized_probability(assignment)
        if weight == 0.0:
            continue
        key = tuple(assignment[v] for v in variables)
        result[key] = result.get(key, 0.0) + weight
    return result


def brute_force_map(
    model: DiscreteGraphicalModel, variables: Sequence[str]
) -> Dict[Tuple[Any, ...], float]:
    """Unnormalised max-marginals over ``variables`` by full enumeration."""
    result: Dict[Tuple[Any, ...], float] = {}
    for assignment in _full_assignments(model):
        weight = model.unnormalized_probability(assignment)
        if weight == 0.0:
            continue
        key = tuple(assignment[v] for v in variables)
        if key not in result or weight > result[key]:
            result[key] = weight
    return result

"""Probabilistic graphical model substrate (discrete Markov random fields).

The Marginal and MAP rows of Table 1 compare InsideOut against the classic
PGM tool-chain.  This package provides that tool-chain from scratch:

* :class:`~repro.pgm.model.DiscreteGraphicalModel` — a discrete MRF with
  named variables and non-negative factors, convertible to FAQ queries,
* :mod:`~repro.pgm.brute` — exhaustive-enumeration inference (ground truth),
* :mod:`~repro.pgm.junction_tree` — the textbook junction-tree / message
  passing algorithm with *dense* clique potentials, whose cost is governed by
  the treewidth (the ``O~(N^tw)`` / ``O~(N^htw)`` baseline of the paper).
"""

from repro.pgm.model import DiscreteGraphicalModel, PGMError
from repro.pgm.brute import brute_force_map, brute_force_marginal, brute_force_partition
from repro.pgm.junction_tree import JunctionTree, junction_tree_map, junction_tree_marginal

__all__ = [
    "DiscreteGraphicalModel",
    "PGMError",
    "brute_force_map",
    "brute_force_marginal",
    "brute_force_partition",
    "JunctionTree",
    "junction_tree_map",
    "junction_tree_marginal",
]

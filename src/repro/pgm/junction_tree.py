"""The textbook junction-tree / message-passing algorithm (dense potentials).

This is the baseline PGM inference engine the paper's Table 1 cites as the
``O~(N^htw)`` / treewidth-bound prior work: clique potentials are *dense*
numpy arrays over the bag domains, so the cost of calibration is the product
of the domain sizes of the largest bag — i.e. exponential in the treewidth —
regardless of how sparse the input factors are.  InsideOut beats it whenever
the fractional-cover structure of sparse factors is better than the
treewidth, which is exactly what the Marginal/MAP benchmarks demonstrate.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.hypergraph.orderings import min_fill_ordering
from repro.hypergraph.treedecomp import decomposition_from_ordering
from repro.pgm.model import DiscreteGraphicalModel, PGMError


class JunctionTree:
    """A calibrated junction tree over a discrete graphical model.

    Parameters
    ----------
    model:
        The graphical model to compile.
    mode:
        ``"sum"`` for marginal inference (sum-product messages) or ``"max"``
        for MAP inference (max-product messages).
    ordering:
        Optional elimination ordering; defaults to min-fill on the model's
        Gaifman graph.
    """

    def __init__(
        self,
        model: DiscreteGraphicalModel,
        mode: str = "sum",
        ordering: Sequence[str] | None = None,
    ) -> None:
        if mode not in ("sum", "max"):
            raise PGMError(f"unknown junction tree mode {mode!r}")
        self.model = model
        self.mode = mode
        hypergraph = model.hypergraph()
        order = list(ordering) if ordering is not None else min_fill_ordering(hypergraph)
        decomposition = decomposition_from_ordering(hypergraph, order)
        self.bags: Dict[object, Tuple[str, ...]] = {
            node: tuple(sorted(bag, key=order.index))
            for node, bag in decomposition.bags.items()
        }
        self.tree: nx.Graph = decomposition.tree
        self._value_index: Dict[str, Dict[Any, int]] = {
            v: {value: i for i, value in enumerate(model.domain(v))} for v in model.variables
        }
        self.potentials: Dict[object, np.ndarray] = {}
        self._build_potentials()
        self.beliefs: Dict[object, np.ndarray] = {}
        self._calibrate()

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _dense_factor(self, scope: Tuple[str, ...], factor) -> np.ndarray:
        """Materialise a sparse factor as a dense array over a full bag scope.

        Bag variables outside the factor's own scope are broadcast: the factor
        value is replicated along those axes (it does not depend on them).
        """
        bag_shape = tuple(len(self.model.domain(v)) for v in scope)
        own_shape = tuple(len(self.model.domain(v)) for v in factor.scope)
        own = np.zeros(own_shape, dtype=float) if factor.scope else np.zeros((), dtype=float)
        for key, value in factor.table.items():
            index = tuple(
                self._value_index[v][val] for v, val in zip(factor.scope, key)
            )
            own[index] = value
        if not factor.scope:
            return np.ones(bag_shape, dtype=float) * float(own)
        positions = [scope.index(v) for v in factor.scope]
        axis_order = np.argsort(positions)
        own_aligned = np.transpose(own, axes=axis_order)
        reshaped = [1] * len(scope)
        for axis, position in enumerate(sorted(positions)):
            reshaped[position] = own_aligned.shape[axis]
        return np.ones(bag_shape, dtype=float) * own_aligned.reshape(reshaped)

    def _build_potentials(self) -> None:
        assigned: Dict[object, List] = {node: [] for node in self.bags}
        for factor in self.model.factors:
            scope = frozenset(factor.scope)
            host = None
            for node, bag in self.bags.items():
                if scope <= frozenset(bag):
                    host = node
                    break
            if host is None:
                raise PGMError(
                    f"no bag covers factor scope {sorted(scope)} — invalid decomposition"
                )
            assigned[host].append(factor)

        for node, bag in self.bags.items():
            shape = tuple(len(self.model.domain(v)) for v in bag)
            potential = np.ones(shape, dtype=float)
            for factor in assigned[node]:
                potential = potential * self._dense_factor(bag, factor)
            self.potentials[node] = potential

    # ------------------------------------------------------------------ #
    # calibration
    # ------------------------------------------------------------------ #
    def _reduce(self, array: np.ndarray, axes: Tuple[int, ...]) -> np.ndarray:
        if not axes:
            return array
        if self.mode == "sum":
            return array.sum(axis=axes)
        return array.max(axis=axes)

    def _message(
        self, source: object, target: object, incoming: Dict[Tuple[object, object], np.ndarray]
    ) -> np.ndarray:
        bag_source = self.bags[source]
        bag_target = self.bags[target]
        belief = self.potentials[source].copy()
        for neighbor in self.tree.neighbors(source):
            if neighbor == target:
                continue
            belief = belief * self._expand(incoming[(neighbor, source)], self.bags[neighbor], bag_source)
        separator = tuple(v for v in bag_source if v in bag_target)
        axes = tuple(i for i, v in enumerate(bag_source) if v not in separator)
        reduced = self._reduce(belief, axes)
        return reduced

    def _expand(
        self, message: np.ndarray, source_bag: Tuple[str, ...], target_bag: Tuple[str, ...]
    ) -> np.ndarray:
        """Broadcast a separator message into the shape of ``target_bag``."""
        separator = tuple(v for v in source_bag if v in target_bag)
        # message is indexed by `separator` in source_bag order.
        shape = [1] * len(target_bag)
        order = []
        for v in separator:
            order.append(v)
        # Re-order message axes to target order.
        target_sep = [v for v in target_bag if v in separator]
        permutation = [order.index(v) for v in target_sep]
        message = np.transpose(message, permutation) if message.ndim > 1 else message
        for i, v in enumerate(target_bag):
            if v in separator:
                shape[i] = len(self.model.domain(v))
        return message.reshape(shape)

    def _calibrate(self) -> None:
        nodes = list(self.tree.nodes)
        if len(nodes) == 1:
            self.beliefs[nodes[0]] = self.potentials[nodes[0]]
            return
        root = nodes[0]
        directed = nx.bfs_tree(self.tree, root)
        messages: Dict[Tuple[object, object], np.ndarray] = {}
        # Collect: leaves → root.
        for node in reversed(list(nx.topological_sort(directed))):
            parents = list(directed.predecessors(node))
            if parents:
                messages[(node, parents[0])] = self._message(node, parents[0], messages)
        # Distribute: root → leaves.
        for node in nx.topological_sort(directed):
            for child in directed.successors(node):
                messages[(node, child)] = self._message(node, child, messages)
        # Beliefs.
        for node in nodes:
            belief = self.potentials[node].copy()
            for neighbor in self.tree.neighbors(node):
                belief = belief * self._expand(
                    messages[(neighbor, node)], self.bags[neighbor], self.bags[node]
                )
            self.beliefs[node] = belief

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def max_bag_size(self) -> int:
        """Size of the largest bag (treewidth + 1)."""
        return max(len(bag) for bag in self.bags.values())

    @property
    def largest_potential_cells(self) -> int:
        """Number of cells of the largest dense clique potential."""
        return max(int(np.prod(p.shape)) if p.ndim else 1 for p in self.potentials.values())

    def partition_function(self) -> float:
        """``Z`` (``mode='sum'``) or the maximum joint weight (``mode='max'``)."""
        node = next(iter(self.beliefs))
        belief = self.beliefs[node]
        return float(belief.sum() if self.mode == "sum" else belief.max())

    def marginal(self, variable: str) -> Dict[Any, float]:
        """Unnormalised single-variable marginal / max-marginal."""
        for node, bag in self.bags.items():
            if variable in bag:
                belief = self.beliefs[node]
                axis = tuple(i for i, v in enumerate(bag) if v != variable)
                reduced = self._reduce(belief, axis)
                domain = self.model.domain(variable)
                return {domain[i]: float(reduced[i]) for i in range(len(domain))}
        raise PGMError(f"variable {variable} not found in any bag")

    def joint_marginal(self, variables: Sequence[str]) -> Dict[Tuple[Any, ...], float]:
        """Unnormalised joint (max-)marginal for variables sharing a bag."""
        wanted = tuple(variables)
        for node, bag in self.bags.items():
            if set(wanted) <= set(bag):
                belief = self.beliefs[node]
                axis = tuple(i for i, v in enumerate(bag) if v not in wanted)
                reduced = self._reduce(belief, axis)
                kept = [v for v in bag if v in wanted]
                reduced = np.transpose(reduced, [kept.index(v) for v in wanted])
                result: Dict[Tuple[Any, ...], float] = {}
                domains = [self.model.domain(v) for v in wanted]
                it = np.nditer(reduced, flags=["multi_index"])
                for value in it:
                    key = tuple(domains[i][j] for i, j in enumerate(it.multi_index))
                    result[key] = float(value)
                return result
        raise PGMError(
            f"variables {list(variables)} do not share a bag; out-of-clique queries "
            "are not supported by this baseline"
        )


def junction_tree_marginal(
    model: DiscreteGraphicalModel, variable: str
) -> Dict[Any, float]:
    """Convenience wrapper: calibrate a sum-product tree, return one marginal."""
    return JunctionTree(model, mode="sum").marginal(variable)


def junction_tree_map(model: DiscreteGraphicalModel, variable: str) -> Dict[Any, float]:
    """Convenience wrapper: calibrate a max-product tree, return max-marginals."""
    return JunctionTree(model, mode="max").marginal(variable)

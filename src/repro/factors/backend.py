"""The pluggable factor-backend layer: sparse listing vs dense ndarray.

The core algorithms (InsideOut, OutsideIn, textbook variable elimination)
operate on *factors* through a small shared surface — scope inspection,
indicator projections, product marginalisation, powers — captured here as
the :class:`FactorBackend` protocol.  Two implementations exist:

* :class:`~repro.factors.factor.Factor` — the sparse listing representation
  (hash tables keyed by value tuples), optimal when ``‖ψ‖ ≪ ∏|Dom|``;
* :class:`~repro.factors.dense.DenseFactor` — an ndarray over the full
  domain box, optimal for dense workloads (DFT, MCM, PGM potentials) where
  vectorized ufunc reductions beat per-tuple Python dict iteration.

This module provides the glue:

* :func:`as_sparse` / :func:`as_dense` — conversions both ways,
* :func:`multiply_factors` — representation-dispatching pairwise product,
* :class:`BackendPolicy` + :func:`prefer_dense` — the cost heuristic that
  picks a representation per elimination step (dense cell count of the
  induced variable set vs the listed-tuple count of the participants),
* :func:`dense_join_reduce` — the vectorized elimination kernel: broadcast
  ``⊗``-product of the participants over the induced box followed by a ufunc
  ``⊕``-reduction of the eliminated variables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Protocol, Sequence, Tuple, Union, runtime_checkable

import numpy as np

from repro.factors.dense import (
    AGGREGATE_UFUNCS,
    DenseFactor,
    aggregate_ufunc,
    aligned_array,
    dense_ops_for,
)
from repro.factors.factor import Factor, FactorError
from repro.semiring.base import Semiring

AnyFactor = Union[Factor, DenseFactor]


@runtime_checkable
class FactorBackend(Protocol):
    """The operation surface the core algorithms need from a factor.

    Both :class:`~repro.factors.factor.Factor` and
    :class:`~repro.factors.dense.DenseFactor` satisfy this protocol, so the
    elimination loops can hold mixed lists and defer the representation
    choice to the per-step heuristic.
    """

    scope: Tuple[str, ...]
    name: str

    def __len__(self) -> int: ...

    @property
    def variables(self) -> frozenset: ...

    def value(self, assignment: Mapping[str, Any], semiring: Semiring) -> Any: ...

    def pruned(self, semiring: Semiring) -> "FactorBackend": ...

    def indicator_projection(self, target: Iterable[str], semiring: Semiring) -> "FactorBackend": ...

    def product_marginalize(self, variable: str, domain_size: int, semiring: Semiring) -> "FactorBackend": ...

    def power(self, exponent: int, semiring: Semiring) -> "FactorBackend": ...

    def has_idempotent_range(self, semiring: Semiring) -> bool: ...

    def equals(self, other: "FactorBackend", semiring: Semiring) -> bool: ...


BACKEND_SPARSE = "sparse"
BACKEND_DENSE = "dense"
BACKEND_AUTO = "auto"
BACKENDS = (BACKEND_SPARSE, BACKEND_DENSE, BACKEND_AUTO)

# Record-only label for elimination steps executed by the vectorized
# flat-table kernel (:mod:`repro.factors.flat`).  Not a selectable backend
# mode: the flat kernel engages automatically under ``"sparse"``/``"auto"``
# whenever a step qualifies, with the trie kernel as the fallback.
BACKEND_FLAT = "flat"


def validate_backend(backend: str) -> str:
    """Validate a backend selector string, returning it unchanged."""
    if backend not in BACKENDS:
        raise ValueError(f"unknown factor backend {backend!r}; expected one of {BACKENDS}")
    return backend


# ---------------------------------------------------------------------- #
# conversions
# ---------------------------------------------------------------------- #
def as_sparse(factor: AnyFactor, semiring: Semiring) -> Factor:
    """The factor in the listing representation (no-op for sparse factors)."""
    if isinstance(factor, DenseFactor):
        return factor.to_factor(semiring)
    return factor


def as_dense(
    factor: AnyFactor, domains: Mapping[str, Sequence[Any]], semiring: Semiring
) -> DenseFactor:
    """The factor in the dense representation (no-op for dense factors)."""
    if isinstance(factor, DenseFactor):
        return factor
    return DenseFactor.from_factor(factor, domains, semiring)


def multiply_factors(
    left: AnyFactor,
    right: AnyFactor,
    semiring: Semiring,
    domains: Mapping[str, Sequence[Any]] | None = None,
) -> AnyFactor:
    """Pointwise product dispatching on representation.

    Two dense operands multiply by broadcasting; any sparse operand pulls
    the product onto the sparse hash-join path (``domains`` is only needed
    to *force* a dense product of mixed operands, which callers do via
    :func:`as_dense` beforehand).
    """
    if isinstance(left, DenseFactor) and isinstance(right, DenseFactor):
        return left.multiply(right, semiring)
    return as_sparse(left, semiring).multiply(as_sparse(right, semiring), semiring)


# ---------------------------------------------------------------------- #
# the cost heuristic
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class BackendPolicy:
    """Thresholds for the per-step sparse/dense decision.

    ``cell_cap`` bounds the dense box materialised in one elimination step
    (cells, not bytes).  ``density_ratio`` is how much implicit-zero padding
    the dense path may pay: a step goes dense when the participants list at
    least ``1/density_ratio`` of their combined domain-box cells.
    """

    cell_cap: int = 1 << 21
    density_ratio: float = 8.0
    # The vectorized flat-table kernel (repro.factors.flat) replaces the
    # trie kernel on sparse steps when the participants list at least
    # ``flat_min_rows`` tuples (below that the NumPy fixed costs lose to
    # the trie) and no join intermediate exceeds ``flat_row_cap`` rows
    # (the trie's depth-first descent never materialises the join, so it
    # stays the safe fallback for blow-up joins).  ``flat_enabled=False``
    # pins every sparse step to the trie kernel.
    flat_enabled: bool = True
    flat_min_rows: int = 256
    flat_row_cap: int = 1 << 22


DEFAULT_POLICY = BackendPolicy()


def dense_cell_count(
    variables: Iterable[str], domains: Mapping[str, Sequence[Any]], cap: int
) -> int | None:
    """``∏ |Dom(v)|`` over ``variables``, or ``None`` once it exceeds ``cap``."""
    total = 1
    for v in variables:
        total *= len(domains[v])
        if total > cap:
            return None
    return total


def supports_dense(semiring: Semiring, tags: Iterable[str] = ()) -> bool:
    """Whether the semiring (and the aggregate tags) map to NumPy ufuncs."""
    if dense_ops_for(semiring) is None:
        return False
    return all(tag in AGGREGATE_UFUNCS for tag in tags)


def prefer_dense(
    participants: Sequence[AnyFactor],
    induced: Iterable[str],
    domains: Mapping[str, Sequence[Any]],
    semiring: Semiring,
    tags: Iterable[str] = (),
    policy: BackendPolicy = DEFAULT_POLICY,
) -> bool:
    """The cost-based representation choice for one elimination step.

    Dense wins when (a) the algebra is ufunc-mappable, (b) the induced
    domain box fits under ``policy.cell_cap`` and (c) the participants are
    dense enough: their total listed-tuple count is at least
    ``1/policy.density_ratio`` of their combined per-factor cell count.
    """
    if not participants or not supports_dense(semiring, tags):
        return False
    if dense_cell_count(induced, domains, policy.cell_cap) is None:
        return False
    listed = 0.0
    box_cells = 0.0
    for factor in participants:
        if isinstance(factor, DenseFactor):
            # Already materialised: count it as fully dense so that chains of
            # dense intermediates do not flap back to sparse.
            listed += factor.array.size
            box_cells += factor.array.size
        else:
            listed += len(factor)
            cells = dense_cell_count(factor.scope, domains, policy.cell_cap)
            box_cells += float(policy.cell_cap) * 2 if cells is None else cells
    if listed == 0:
        return False
    return listed * policy.density_ratio >= box_cells


def force_dense_ok(
    induced: Iterable[str],
    domains: Mapping[str, Sequence[Any]],
    semiring: Semiring,
    tags: Iterable[str] = (),
    policy: BackendPolicy = DEFAULT_POLICY,
) -> bool:
    """Eligibility check for ``backend="dense"`` (ignores the density test)."""
    if not supports_dense(semiring, tags):
        return False
    return dense_cell_count(induced, domains, policy.cell_cap) is not None


def choose_dense(
    backend: str,
    participants: Sequence[AnyFactor],
    induced: Iterable[str],
    domains: Mapping[str, Sequence[Any]],
    semiring: Semiring,
    tags: Iterable[str] = (),
    policy: BackendPolicy = DEFAULT_POLICY,
) -> bool:
    """Per-step representation choice under a requested backend mode.

    ``"sparse"`` never goes dense, ``"dense"`` goes dense whenever the
    algebra is mappable and the induced box fits under the cell cap, and
    ``"auto"`` additionally applies the density test of
    :func:`prefer_dense`.  Shared by InsideOut and variable elimination.
    """
    if backend == BACKEND_SPARSE:
        return False
    if backend == BACKEND_DENSE:
        return force_dense_ok(induced, domains, semiring, tags, policy)
    return prefer_dense(participants, induced, domains, semiring, tags, policy)


# ---------------------------------------------------------------------- #
# the vectorized elimination kernel
# ---------------------------------------------------------------------- #
def dense_join_reduce(
    participants: Sequence[AnyFactor],
    semiring: Semiring,
    domains: Mapping[str, Sequence[Any]],
    output_scope: Sequence[str],
    reduce_variables: Sequence[str] = (),
    reduce_tag: str | None = None,
    name: str | None = None,
) -> DenseFactor:
    """Broadcast-multiply ``participants`` and ufunc-reduce variables away.

    The target scope is ``output_scope + reduce_variables``; every
    participant's scope must be a subset of it.  The ``⊗``-product is formed
    by NumPy broadcasting over the full domain box, then the trailing
    ``reduce_variables`` axes are folded with the aggregate ufunc for
    ``reduce_tag`` — the vectorized counterpart of one InsideOut
    elimination step (lines 5-11 of Algorithm 1).
    """
    ops = dense_ops_for(semiring)
    if ops is None:
        raise FactorError(f"semiring {semiring.name!r} has no dense operator table")
    if not participants:
        raise FactorError("dense_join_reduce requires at least one participant")
    reduce_variables = tuple(reduce_variables)
    target = tuple(output_scope) + reduce_variables
    accumulator: np.ndarray | None = None
    for factor in participants:
        dense = as_dense(factor, domains, semiring)
        aligned = aligned_array(dense, target)
        accumulator = aligned if accumulator is None else ops.mul(accumulator, aligned)
    # ufuncs over 0-d object arrays return bare Python scalars; re-wrap.
    accumulator = np.asarray(accumulator)
    full_shape = tuple(len(domains[v]) for v in target)
    if accumulator.shape != full_shape:
        # Some target variable appears in no participant (can only happen for
        # output variables): broadcast the constant direction explicitly.
        accumulator = np.broadcast_to(accumulator, full_shape)
    if reduce_variables:
        ufunc = aggregate_ufunc(reduce_tag) if reduce_tag is not None else None
        if ufunc is None:
            raise FactorError(f"aggregate tag {reduce_tag!r} has no ufunc mapping")
        for _ in reduce_variables:
            accumulator = ufunc.reduce(accumulator, axis=-1)
    # Reductions of object arrays can return bare Python scalars; re-wrap so
    # the result is always an ndarray of the semiring dtype.
    result = np.array(accumulator, dtype=ops.dtype, copy=True)
    result_domains = {v: tuple(domains[v]) for v in output_scope}
    return DenseFactor(
        tuple(output_scope),
        result_domains,
        result,
        name=name or "dense_join",
        zero=ops.zero,
    )

"""Sparse factors in the listing representation (Definition 4.1 of the paper).

A *factor* ``ψ_S`` is a function from the product of the domains of the
variables in its scope ``S`` to the semiring domain ``D``.  Under the listing
representation only the tuples with non-zero value are stored, which is the
standard encoding in relational databases, CSP and sparse matrix computation.

The package contains:

* :class:`~repro.factors.factor.Factor` — the core sparse table with
  conditioning, marginalisation, indicator projections and products,
* :class:`~repro.factors.dense.DenseFactor` — the dense ndarray-backed
  representation with vectorized (ufunc) products and aggregations,
* :mod:`~repro.factors.backend` — the pluggable backend layer: the
  :class:`~repro.factors.backend.FactorBackend` protocol, sparse/dense
  conversions and the per-step cost heuristic used by the core algorithms,
* :class:`~repro.factors.index.FactorTrie` — a hash-trie index used by the
  OutsideIn worst-case-optimal join,
* :mod:`~repro.factors.builders` — constructors from python functions,
  relations, numpy matrices/vectors,
* :mod:`~repro.factors.compact` — compact (non-listing) representations:
  box factors and CNF clauses (Section 8 of the paper).
"""

from repro.factors.factor import Factor, FactorError
from repro.factors.delta import FactorDelta
from repro.factors.dense import (
    AGGREGATE_UFUNCS,
    DENSE_SEMIRING_OPS,
    DenseFactor,
    DenseOps,
    register_dense_ops,
)
from repro.factors.backend import (
    BackendPolicy,
    FactorBackend,
    as_dense,
    as_sparse,
    choose_dense,
    dense_join_reduce,
    multiply_factors,
    prefer_dense,
    supports_dense,
)
from repro.factors.index import FactorTrie
from repro.factors.builders import (
    factor_from_function,
    factor_from_matrix,
    factor_from_relation,
    factor_from_vector,
    indicator_factor,
    uniform_factor,
)
from repro.factors.compact import BoxFactor, Clause, Literal

__all__ = [
    "Factor",
    "FactorError",
    "FactorDelta",
    "DenseFactor",
    "DenseOps",
    "DENSE_SEMIRING_OPS",
    "AGGREGATE_UFUNCS",
    "register_dense_ops",
    "FactorBackend",
    "BackendPolicy",
    "as_dense",
    "as_sparse",
    "choose_dense",
    "dense_join_reduce",
    "multiply_factors",
    "prefer_dense",
    "supports_dense",
    "FactorTrie",
    "factor_from_function",
    "factor_from_matrix",
    "factor_from_relation",
    "factor_from_vector",
    "indicator_factor",
    "uniform_factor",
    "BoxFactor",
    "Clause",
    "Literal",
]

"""Compact (non-listing) factor representations from Section 8 of the paper.

Two representations are implemented:

* :class:`BoxFactor` (Definition 8.2) — a factor that equals a constant ``c``
  inside a combinatorial box and ``1`` outside.  CNF clauses, the boxes of
  the Box Cover Problem (Minesweeper / Tetris) and negated selections are all
  box factors.
* :class:`Clause` / :class:`Literal` — CNF clauses as used by the
  Davis–Putnam style InsideOut of Sections 8.3.1 / 8.3.2.  A clause over
  variables ``vars(C)`` corresponds to the box factor whose box is the single
  falsifying assignment.

These representations are deliberately *not* converted to the listing format
(a clause of width ``w`` lists ``2^w - 1`` satisfying tuples); the SAT/#SAT
solvers in :mod:`repro.solvers.sat` eliminate variables directly on them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, Mapping, Sequence, Tuple

from repro.factors.factor import Factor, FactorError
from repro.semiring.base import Semiring


@dataclass(frozen=True)
class BoxFactor:
    """A box factor ``ψ_S``: constant ``c`` inside the box, ``1`` outside.

    Attributes
    ----------
    box:
        Mapping from variable name to the set of values the box allows for
        that variable.  The box is the Cartesian product of these sets.
    inside_value:
        The value ``c`` taken inside the box.
    """

    box: Mapping[str, FrozenSet[Any]]
    inside_value: Any

    @property
    def scope(self) -> Tuple[str, ...]:
        """The support ``S`` of the box factor."""
        return tuple(self.box.keys())

    def value(self, assignment: Mapping[str, Any]) -> Any:
        """Evaluate the box factor on an assignment of (at least) its scope."""
        inside = all(assignment[v] in allowed for v, allowed in self.box.items())
        return self.inside_value if inside else 1

    def to_listing(
        self, domains: Mapping[str, Sequence[Any]], semiring: Semiring
    ) -> Factor:
        """Materialise the box factor into the listing representation.

        The blow-up is exponential in the scope size — only use for small
        scopes (tests and cross-checks).
        """
        import itertools

        scope = self.scope
        table: Dict[Tuple[Any, ...], Any] = {}
        for values in itertools.product(*(domains[v] for v in scope)):
            assignment = dict(zip(scope, values))
            val = self.value(assignment)
            if not semiring.is_zero(val):
                table[values] = val
        return Factor(scope, table, name="box")


@dataclass(frozen=True)
class Literal:
    """A propositional literal: a variable and a polarity."""

    variable: str
    positive: bool

    def negate(self) -> "Literal":
        """Return the complementary literal."""
        return Literal(self.variable, not self.positive)

    def satisfied_by(self, value: bool) -> bool:
        """``True`` if assigning ``value`` to the variable satisfies this literal."""
        return value if self.positive else (not value)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.variable if self.positive else f"~{self.variable}"


class Clause:
    """A CNF clause: a disjunction of literals over distinct variables.

    The clause is a compactly represented factor: as a Boolean factor it is
    ``False`` on the single falsifying assignment (every literal false) and
    ``True`` elsewhere; as a counting factor it is ``0`` / ``1`` respectively.
    For the weighted-#SAT elimination of Section 8.3.2 a clause may carry a
    ``weight`` giving the value taken on the falsifying assignment.
    """

    __slots__ = ("literals", "weight")

    def __init__(self, literals: Iterable[Literal], weight: Any = 0) -> None:
        lits = {}
        for lit in literals:
            if lit.variable in lits and lits[lit.variable].positive != lit.positive:
                # Clause contains X and ~X: it is a tautology. Represent with
                # an empty literal map and weight 1 so that it never constrains.
                self.literals: Dict[str, Literal] = {}
                self.weight = 1
                return
            lits[lit.variable] = lit
        self.literals = lits
        self.weight = weight

    # ------------------------------------------------------------------ #
    @property
    def variables(self) -> FrozenSet[str]:
        """The set ``vars(C)``."""
        return frozenset(self.literals.keys())

    @property
    def is_tautology(self) -> bool:
        """``True`` for the clause that is satisfied by every assignment."""
        return not self.literals and self.weight == 1

    @property
    def is_empty(self) -> bool:
        """``True`` for the empty (unsatisfiable) clause with weight 0."""
        return not self.literals and self.weight == 0

    def __len__(self) -> int:
        return len(self.literals)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if not self.literals:
            return "Clause(TRUE)" if self.is_tautology else f"Clause(EMPTY, w={self.weight})"
        body = " | ".join(str(l) for l in sorted(self.literals.values(), key=lambda x: x.variable))
        return f"Clause({body}, w={self.weight})"

    # ------------------------------------------------------------------ #
    def literal_for(self, variable: str) -> Literal | None:
        """The literal on ``variable`` if present."""
        return self.literals.get(variable)

    def contains(self, variable: str) -> bool:
        """``True`` iff the clause mentions ``variable``."""
        return variable in self.literals

    def satisfied_by(self, assignment: Mapping[str, bool]) -> bool:
        """Evaluate the clause under a full assignment of its variables."""
        if not self.literals:
            return self.is_tautology
        return any(lit.satisfied_by(assignment[v]) for v, lit in self.literals.items())

    def value(self, assignment: Mapping[str, bool]) -> Any:
        """The factor value: ``1`` if satisfied, ``weight`` otherwise."""
        return 1 if self.satisfied_by(assignment) else self.weight

    def drop(self, variable: str) -> "Clause":
        """The clause ``[C]_{-X}`` with the literal on ``variable`` removed."""
        return Clause(
            [lit for v, lit in self.literals.items() if v != variable], weight=self.weight
        )

    def resolve(self, other: "Clause", variable: str) -> "Clause":
        """Davis–Putnam resolution of two clauses on ``variable``.

        One clause must contain the positive literal and the other the
        negative literal; the resolvent is the disjunction of the remaining
        literals (a tautology if complementary literals remain).
        """
        mine = self.literal_for(variable)
        theirs = other.literal_for(variable)
        if mine is None or theirs is None or mine.positive == theirs.positive:
            raise FactorError(
                f"cannot resolve on {variable}: literals {mine} / {theirs}"
            )
        lits = [lit for v, lit in self.literals.items() if v != variable]
        lits += [lit for v, lit in other.literals.items() if v != variable]
        return Clause(lits, weight=0)

    def to_factor(self, semiring: Semiring) -> Factor:
        """Materialise as a listing-representation factor over ``{False, True}``.

        Exponential in the clause width; used only in tests and brute-force
        cross-checks.
        """
        import itertools

        scope = tuple(sorted(self.variables))
        table: Dict[Tuple[Any, ...], Any] = {}
        for values in itertools.product((False, True), repeat=len(scope)):
            assignment = dict(zip(scope, values))
            sat = self.satisfied_by(assignment) if self.literals else self.is_tautology
            val = semiring.one if sat else self.weight
            if not semiring.is_zero(val):
                table[values] = val
        return Factor(scope, table, name=f"clause{scope}")


def clause_from_ints(ints: Iterable[int], prefix: str = "x") -> Clause:
    """Build a clause from DIMACS-style signed integers (``3 -5`` etc.)."""
    literals = []
    for i in ints:
        if i == 0:
            raise FactorError("0 is not a valid DIMACS literal")
        literals.append(Literal(f"{prefix}{abs(i)}", i > 0))
    return Clause(literals)

"""The vectorized flat-table kernel for sparse elimination steps.

The trie kernel (:func:`repro.core.outsidein.eliminate_join`) is pure
Python: every survivor tuple costs dict probes, set intersections and a
per-candidate fold, all under the GIL.  For the semirings whose operators
map to NumPy ufuncs *and* whose aggregates are fold-order independent
(``max``/``min``/``or`` — never float ``sum``, whose re-association changes
the bits), the same fused multiply-then-marginalize step can run as a
handful of GIL-releasing array operations instead:

* a factor's sparse table is *encoded* as one ``int64`` domain-code column
  per scope variable plus a value column of the semiring dtype
  (:class:`FlatFactor`);
* the multiway natural join is an iterative sorted-merge on packed
  mixed-radix key codes (``argsort`` + ``searchsorted`` + ``repeat``);
* the eliminated variable's aggregate is a grouped ``ufunc.reduceat`` over
  the survivor key, and zero tuples are dropped by a vectorized mask that
  reproduces :meth:`repro.semiring.base.Semiring.values_equal` exactly.

The kernel is engineered to agree with the trie path up to ``==`` on the
resulting table (and to be deterministic in itself): participants are
folded in the trie kernel's exact order (indicator projections first, then
the incident factors), the partial product is zero-masked after *every*
multiplication just as ``eliminate_join`` tests ``is_zero`` after every
``mul``, per-source zero screening matches the corresponding trie build
(tolerant for listing factors, exact ``!=`` for dense ndarrays), and any
input that could make a ``max``/``min`` fold order-dependent (NaN values,
unsafe ``int``→``float64`` conversions, custom equality predicates) makes
the step fall back to the trie kernel instead.  :func:`try_flat_eliminate`
returns ``None`` for every such bail-out; the caller keeps the trie path
as the universal fallback.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.factors.dense import AGGREGATE_UFUNCS, DenseFactor, DenseOps, dense_ops_for
from repro.factors.factor import Factor
from repro.semiring.base import Semiring

# Aggregate tags whose folds are order-independent on IEEE values (ties are
# ``==``-equal either way).  Float ``sum`` is deliberately absent: grouped
# reduceat re-associates the fold, which changes the bits vs the trie path.
FLAT_TAGS = frozenset({"max", "min", "or"})

# Mixed-radix packed keys must fit int64 with headroom for the running
# ``key * radix + code`` accumulation.
_MAX_RADIX = 1 << 62

# Integers above 2**53 do not round-trip through float64; converting them
# would diverge from the trie path's exact Python arithmetic.
_MAX_SAFE_INT = 1 << 53


class FlatFactor:
    """One factor's sparse table as aligned NumPy columns.

    ``columns`` maps each scope variable to an ``int64`` array of domain
    codes (the value's index in the query domain tuple); ``values`` is the
    aligned value column in the semiring's dense dtype.  Rows are exactly
    the tuples the corresponding :class:`~repro.factors.index.FactorTrie`
    would hold.
    """

    __slots__ = ("scope", "columns", "values")

    def __init__(
        self,
        scope: Tuple[str, ...],
        columns: Dict[str, np.ndarray],
        values: np.ndarray,
    ) -> None:
        self.scope = scope
        self.columns = columns
        self.values = values

    def __len__(self) -> int:
        return int(self.values.shape[0])


class FlatContext:
    """Per-run encoding context: domain code maps + the semiring's ufuncs."""

    __slots__ = ("semiring", "ops", "index", "objects", "sizes")

    def __init__(self, semiring: Semiring, ops: DenseOps, domains) -> None:
        self.semiring = semiring
        self.ops = ops
        self.index: Dict[str, Dict[Any, int]] = {}
        self.objects: Dict[str, np.ndarray] = {}
        self.sizes: Dict[str, int] = {}
        for variable, domain in domains.items():
            self.index[variable] = {value: i for i, value in enumerate(domain)}
            holder = np.empty(len(domain), dtype=object)
            holder[:] = list(domain)
            self.objects[variable] = holder
            self.sizes[variable] = len(domain)


def flat_context(semiring: Semiring, domains) -> Optional[FlatContext]:
    """Build an encoding context, or ``None`` if the semiring has no ufuncs."""
    ops = dense_ops_for(semiring)
    if ops is None or ops.dtype == object:
        return None
    return FlatContext(semiring, ops, domains)


def flat_step_eligible(
    semiring: Semiring,
    tag: str,
    domains,
    induced,
    participants: Sequence[Any],
    min_rows: int,
) -> bool:
    """Whether one elimination step qualifies for the flat kernel.

    Deterministic in the step's content (the step cache keys results by
    content digest, so the kernel choice must be a function of the inputs):
    the aggregate fold must be order-independent, the semiring must map to
    non-object ufuncs with default value equality, the induced domain box
    must pack into ``int64`` keys, and the participants must list enough
    tuples to amortise the NumPy fixed costs.
    """
    if tag not in FLAT_TAGS:
        return False
    if semiring.eq is not None:
        return False
    ops = dense_ops_for(semiring)
    if ops is None or ops.dtype == object:
        return False
    radix = 1
    for variable in induced:
        radix *= len(domains[variable])
        if radix > _MAX_RADIX:
            return False
    return sum(len(f) for f in participants) >= min_rows


# ---------------------------------------------------------------------- #
# zero screening
# ---------------------------------------------------------------------- #
def _zero_mask(values: np.ndarray, zero: Any) -> np.ndarray:
    """Vectorized :meth:`Semiring.values_equal` against the semiring zero.

    Bit-for-bit the scalar predicate: exact comparison for ``bool`` and for
    infinite zeros (min-plus ``+inf``, max-sum ``-inf``), and the relative
    ``1e-9 * max(1, |a|, |b|)`` tolerance with the ``|a-b| == inf`` escape
    for finite zeros.  NaN values are never zero (as in the scalar code).
    """
    if values.dtype == np.bool_:
        return values == zero
    if np.isinf(zero):
        return values == zero
    with np.errstate(invalid="ignore"):
        diff = np.abs(values - zero)
        scale = np.maximum(np.abs(values), abs(zero))
        tolerance = 1e-9 * np.maximum(scale, 1.0)
        return (diff <= tolerance) & (diff != np.inf)


def _drop_zero_rows(
    columns: Dict[str, np.ndarray], values: np.ndarray, zero: Any
) -> Tuple[Dict[str, np.ndarray], np.ndarray]:
    mask = _zero_mask(values, zero)
    if mask.any():
        keep = ~mask
        columns = {v: c[keep] for v, c in columns.items()}
        values = values[keep]
    return columns, values


def _value_column(raw: np.ndarray, ops: DenseOps) -> Optional[np.ndarray]:
    """Convert a raw value array to the semiring dtype, or ``None`` if lossy.

    Only exact conversions are allowed: float64/bool pass through, ints
    below ``2**53`` widen exactly.  Anything else (mixed object columns,
    huge ints, bool tables holding non-bool truthy values) would diverge
    from the trie path's Python arithmetic, so the step falls back.
    """
    if raw.dtype == ops.dtype:
        column = raw
    elif ops.dtype == np.float64 and raw.dtype.kind in "iu":
        if raw.size and int(np.max(np.abs(raw.astype(np.int64)))) > _MAX_SAFE_INT:
            return None
        column = raw.astype(np.float64)
    else:
        return None
    if column.dtype == np.float64 and bool(np.isnan(column).any()):
        # NaN makes max/min folds depend on candidate enumeration order.
        return None
    return column


# ---------------------------------------------------------------------- #
# encoding
# ---------------------------------------------------------------------- #
def encode_flat(factor, ctx: FlatContext) -> Optional[FlatFactor]:
    """Encode a factor's sparse table as flat columns, or ``None``.

    Zero screening mirrors the matching trie build exactly: listing factors
    drop tolerant-zero entries (as :class:`FactorTrie` does), dense factors
    keep every exactly-non-zero cell (as :meth:`FactorTrie.from_dense`
    does) — the join's per-multiplication masking handles the near-zero
    stragglers precisely where the trie kernel's ``is_zero`` tests would.
    """
    if isinstance(factor, DenseFactor):
        return _encode_dense(factor, ctx)
    return _encode_listing(factor, ctx)


def _encode_listing(factor: Factor, ctx: FlatContext) -> Optional[FlatFactor]:
    scope = tuple(factor.scope)
    arity = len(scope)
    rows = len(factor.table)
    indexes = []
    for variable in scope:
        index = ctx.index.get(variable)
        if index is None:
            return None
        indexes.append(index)
    code_lists: List[List[int]] = [[] for _ in range(arity)]
    raw_values: List[Any] = []
    try:
        for key, value in factor.table.items():
            for position in range(arity):
                code_lists[position].append(indexes[position][key[position]])
            raw_values.append(value)
    except (KeyError, TypeError):
        return None  # a table value outside the declared domain
    columns = {
        variable: np.asarray(code_lists[i], dtype=np.int64)
        for i, variable in enumerate(scope)
    }
    if rows == 0:
        return FlatFactor(scope, columns, np.empty(0, dtype=ctx.ops.dtype))
    values = _value_column(np.asarray(raw_values), ctx.ops)
    if values is None:
        return None
    columns, values = _drop_zero_rows(columns, values, ctx.semiring.zero)
    return FlatFactor(scope, columns, values)


def _encode_dense(dense: DenseFactor, ctx: FlatContext) -> Optional[FlatFactor]:
    scope = tuple(dense.scope)
    if dense.array.dtype == object:
        return None
    for variable in scope:
        domain = ctx.objects.get(variable)
        if domain is None or dense.domains[variable] != tuple(domain.tolist()):
            return None  # axis indices would not be query-domain codes
    mask = dense.nonzero_mask(ctx.semiring)
    cells = np.nonzero(mask)
    columns = {
        variable: cells[axis].astype(np.int64)
        for axis, variable in enumerate(scope)
    }
    values = _value_column(dense.array[mask], ctx.ops)
    if values is None:
        return None
    return FlatFactor(scope, columns, values)


# ---------------------------------------------------------------------- #
# the fused join-and-marginalize kernel
# ---------------------------------------------------------------------- #
def _pack_keys(
    columns: Dict[str, np.ndarray], variables: Sequence[str], ctx: FlatContext,
    rows: int,
) -> np.ndarray:
    """Mixed-radix packed ``int64`` key codes over ``variables``."""
    key = np.zeros(rows, dtype=np.int64)
    for variable in variables:
        key = key * ctx.sizes[variable] + columns[variable]
    return key


def flat_eliminate(
    participants: Sequence[FlatFactor],
    variable: str,
    output_scope: Tuple[str, ...],
    tag: str,
    ctx: FlatContext,
    row_cap: int,
    name: str,
) -> Optional[Tuple[Factor, FlatFactor]]:
    """Fused multiply-then-marginalize over flat-encoded participants.

    ``participants`` must be in the trie kernel's fold order (indicator
    projections first, then the incident factors): the running product is
    multiplied participant by participant and zero-masked after every
    multiplication, reproducing ``eliminate_join``'s per-``mul``
    ``is_zero`` short-circuits row for row.  Returns the result as a
    listing :class:`Factor` *plus* its own flat encoding (so the next step
    consuming the factor skips the re-encode), or ``None`` when an
    intermediate would exceed ``row_cap`` rows (the caller falls back to
    the trie kernel, whose depth-first descent never materialises the
    join).
    """
    ops = ctx.ops

    def empty_pair() -> Tuple[Factor, FlatFactor]:
        factor = Factor(output_scope, {}, name=name)
        encoding = FlatFactor(
            output_scope,
            {v: np.empty(0, dtype=np.int64) for v in output_scope},
            np.empty(0, dtype=ops.dtype),
        )
        return factor, encoding

    for flat in participants:
        if len(flat) == 0:
            return empty_pair()  # some participant is identically zero

    columns: Dict[str, np.ndarray] = {}
    values: Optional[np.ndarray] = None
    for flat in participants:
        if values is None:
            columns = dict(flat.columns)
            # Fold from the semiring one exactly as the trie kernel does.
            values = ops.mul(np.asarray(ops.one, dtype=ops.dtype), flat.values)
        else:
            shared = [v for v in flat.scope if v in columns]
            if shared:
                state_key = _pack_keys(columns, shared, ctx, values.shape[0])
                other_key = _pack_keys(flat.columns, shared, ctx, len(flat))
                order = np.argsort(other_key, kind="stable")
                sorted_key = other_key[order]
                left = np.searchsorted(sorted_key, state_key, side="left")
                right = np.searchsorted(sorted_key, state_key, side="right")
                counts = right - left
                keep = counts > 0
                counts = counts[keep]
                total = int(counts.sum())
                if total > row_cap:
                    return None
                state_rows = np.repeat(np.flatnonzero(keep), counts)
                starts = np.repeat(left[keep], counts)
                ends = np.cumsum(counts)
                offsets = np.arange(total, dtype=np.int64) - np.repeat(
                    ends - counts, counts
                )
                other_rows = order[starts + offsets]
            else:
                total = values.shape[0] * len(flat)
                if total > row_cap:
                    return None
                state_rows = np.repeat(
                    np.arange(values.shape[0], dtype=np.int64), len(flat)
                )
                other_rows = np.tile(
                    np.arange(len(flat), dtype=np.int64), values.shape[0]
                )
            values = ops.mul(values[state_rows], flat.values[other_rows])
            new_columns = {v: c[state_rows] for v, c in columns.items()}
            for v in flat.scope:
                if v not in new_columns:
                    new_columns[v] = flat.columns[v][other_rows]
            columns = new_columns
        columns, values = _drop_zero_rows(columns, values, ctx.semiring.zero)
        if values.shape[0] == 0:
            return empty_pair()

    ufunc = AGGREGATE_UFUNCS[tag]
    if not output_scope:
        total_value = ufunc.reduce(values)
        total_value = (
            bool(total_value) if values.dtype == np.bool_ else float(total_value)
        )
        if ctx.semiring.is_zero(total_value):
            return empty_pair()
        factor = Factor((), {(): total_value}, name=name)
        encoding = FlatFactor((), {}, np.asarray([total_value], dtype=ops.dtype))
        return factor, encoding

    group_key = _pack_keys(columns, output_scope, ctx, values.shape[0])
    order = np.argsort(group_key, kind="stable")
    sorted_key = group_key[order]
    sorted_values = values[order]
    starts = np.flatnonzero(
        np.concatenate(([True], sorted_key[1:] != sorted_key[:-1]))
    )
    aggregated = ufunc.reduceat(sorted_values, starts)
    group_rows = order[starts]
    mask = _zero_mask(aggregated, ctx.semiring.zero)
    if mask.any():
        keep = ~mask
        aggregated = aggregated[keep]
        group_rows = group_rows[keep]
    if aggregated.shape[0] == 0:
        return empty_pair()

    result_columns = {v: columns[v][group_rows] for v in output_scope}
    decoded = [ctx.objects[v][result_columns[v]].tolist() for v in output_scope]
    table = dict(zip(zip(*decoded), aggregated.tolist()))
    factor = Factor(output_scope, table, name=name)
    encoding = FlatFactor(output_scope, result_columns, aggregated)
    return factor, encoding

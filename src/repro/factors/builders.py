"""Convenience constructors for :class:`~repro.factors.factor.Factor`.

These builders cover the encodings used in the paper's example reductions
(Appendix A): relations (tuples mapped to ``1``), dense matrices and vectors
(sparse entries become the listing representation), indicator/equality
factors and arbitrary python functions over explicit domains.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Iterable, Mapping, Sequence, Tuple

import numpy as np

from repro.factors.factor import Factor, FactorError
from repro.semiring.base import Semiring

ValueTuple = Tuple[Any, ...]


def factor_from_function(
    scope: Sequence[str],
    domains: Mapping[str, Sequence[Any]],
    fn: Callable[..., Any],
    semiring: Semiring,
    name: str | None = None,
) -> Factor:
    """Materialise ``fn`` over the product of the scope variables' domains.

    ``fn`` is called positionally with one value per scope variable; results
    equal to the semiring zero are not stored.  This is how truth-table style
    inputs (e.g. conditional probability tables) are converted to the listing
    representation.
    """
    missing = [v for v in scope if v not in domains]
    if missing:
        raise FactorError(f"domains missing for {missing}")
    table: Dict[ValueTuple, Any] = {}
    for values in itertools.product(*(domains[v] for v in scope)):
        result = fn(*values)
        if not semiring.is_zero(result):
            table[values] = result
    return Factor(scope, table, name=name)


def factor_from_relation(
    scope: Sequence[str],
    tuples: Iterable[ValueTuple],
    semiring: Semiring,
    name: str | None = None,
) -> Factor:
    """Encode a relation as a ``0/1`` factor (tuples present map to ``1``)."""
    table = {tuple(t): semiring.one for t in tuples}
    return Factor(scope, table, name=name)


def factor_from_matrix(
    row_var: str,
    col_var: str,
    matrix: np.ndarray,
    semiring: Semiring,
    name: str | None = None,
) -> Factor:
    """Encode a 2-D matrix as a factor ``ψ(i, j) = A[i, j]``.

    Zero entries (w.r.t. the semiring) are skipped, so sparse matrices get a
    genuinely sparse listing representation.
    """
    array = np.asarray(matrix)
    if array.ndim != 2:
        raise FactorError(f"expected a 2-D matrix, got shape {array.shape}")
    table: Dict[ValueTuple, Any] = {}
    rows, cols = array.shape
    for i in range(rows):
        for j in range(cols):
            value = array[i, j]
            item = value.item() if hasattr(value, "item") else value
            if not semiring.is_zero(item):
                table[(i, j)] = item
    return Factor((row_var, col_var), table, name=name)


def factor_from_vector(
    var: str, vector: np.ndarray, semiring: Semiring, name: str | None = None
) -> Factor:
    """Encode a 1-D vector as a unary factor ``ψ(i) = b[i]``."""
    array = np.asarray(vector)
    if array.ndim != 1:
        raise FactorError(f"expected a 1-D vector, got shape {array.shape}")
    table: Dict[ValueTuple, Any] = {}
    for i in range(array.shape[0]):
        value = array[i]
        item = value.item() if hasattr(value, "item") else value
        if not semiring.is_zero(item):
            table[(i,)] = item
    return Factor((var,), table, name=name)


def indicator_factor(
    scope: Sequence[str],
    domains: Mapping[str, Sequence[Any]],
    predicate: Callable[..., bool],
    semiring: Semiring,
    name: str | None = None,
) -> Factor:
    """A ``{0, 1}``-valued factor from a boolean predicate over the domains.

    Tuples satisfying the predicate map to ``semiring.one``, the rest are
    implicitly zero.  Used for constraints such as inequality (graph
    colouring) or equality predicates.
    """
    return factor_from_function(
        scope,
        domains,
        lambda *values: semiring.one if predicate(*values) else semiring.zero,
        semiring,
        name=name,
    )


def uniform_factor(
    scope: Sequence[str],
    domains: Mapping[str, Sequence[Any]],
    value: Any,
    semiring: Semiring,
    name: str | None = None,
) -> Factor:
    """A factor assigning the same ``value`` to every tuple of the domains."""
    return factor_from_function(scope, domains, lambda *_: value, semiring, name=name)

"""Dense (ndarray-backed) factors — the vectorized alternative to listing.

The listing representation (:class:`~repro.factors.factor.Factor`) stores
only the non-zero tuples of a factor, which is optimal for sparse inputs but
pays a Python-dict-iteration cost per tuple on every product and aggregate.
Workloads that are *naturally dense* — the DFT twiddle factors, matrix chain
multiplication, most PGM potentials — list (nearly) every cell of the domain
box anyway, so the same operations map directly onto NumPy broadcasting and
ufunc reductions with a two-orders-of-magnitude smaller constant factor.

A :class:`DenseFactor` stores

* ``scope`` — the ordered variable names (like a sparse factor),
* ``domains`` — the full domain tuple of every scope variable,
* ``array`` — an ndarray of shape ``(|Dom(v_1)|, ..., |Dom(v_s)|)`` whose
  cell ``[i_1, ..., i_s]`` holds ``ψ(dom_1[i_1], ..., dom_s[i_s])``.

Unlisted tuples of the sparse representation appear here as explicit
semiring-zero cells, so ``0``-annihilation under ``⊗`` and identity under
``⊕`` are handled by ordinary arithmetic instead of key absence.

Only semirings whose operators map to NumPy ufuncs get a dense
representation (see :data:`DENSE_SEMIRING_OPS`); queries over other
semirings — e.g. the set semiring — stay on the sparse path.  The counting
semiring deliberately uses ``object`` dtype so that #CQ / #SAT style counts
keep Python's arbitrary precision instead of silently overflowing ``int64``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Mapping, Sequence, Tuple

import numpy as np

from repro.factors.factor import Factor, FactorError
from repro.semiring.base import Semiring

ValueTuple = Tuple[Any, ...]


@dataclass(frozen=True)
class DenseOps:
    """NumPy counterparts of a semiring's operators.

    ``pow_kind`` selects the vectorized implementation of the ``⊗``-power
    used when InsideOut pushes a factor through a product aggregate:
    ``"mul"`` (ordinary ``x ** n``), ``"add"`` (tropical ``x * n``) or
    ``"idempotent"`` (``x ⊗ x = x``, the power is the identity for n >= 1).
    """

    name: str
    dtype: Any
    add: np.ufunc
    mul: np.ufunc
    zero: Any
    one: Any
    pow_kind: str = "mul"


DENSE_SEMIRING_OPS: Dict[str, DenseOps] = {}
"""Registry mapping semiring *names* to their NumPy operator table."""


def register_dense_ops(ops: DenseOps) -> None:
    """Register (or replace) the dense operator table for a semiring name."""
    DENSE_SEMIRING_OPS[ops.name] = ops


for _ops in (
    DenseOps("boolean", np.bool_, np.logical_or, np.logical_and, False, True, "idempotent"),
    # object dtype: Python ints never overflow, which #SAT-style counts need.
    DenseOps("counting", object, np.add, np.multiply, 0, 1, "mul"),
    DenseOps("sum-product", np.float64, np.add, np.multiply, 0.0, 1.0, "mul"),
    DenseOps("complex-sum-product", np.complex128, np.add, np.multiply, 0j, 1 + 0j, "mul"),
    DenseOps("max-product", np.float64, np.maximum, np.multiply, 0.0, 1.0, "mul"),
    DenseOps("min-plus", np.float64, np.minimum, np.add, np.inf, 0.0, "add"),
    DenseOps("max-sum", np.float64, np.maximum, np.add, -np.inf, 0.0, "add"),
    # min-product is intentionally absent: its additive identity +inf is not
    # an annihilator of ``×`` (inf * 0 = nan), so the dense path cannot rely
    # on plain arithmetic for zero-annihilation.  It stays on the sparse path.
):
    register_dense_ops(_ops)


AGGREGATE_UFUNCS: Dict[str, np.ufunc] = {
    "sum": np.add,
    "max": np.maximum,
    "min": np.minimum,
    "or": np.logical_or,
}
"""ufunc reductions for the standard semiring-aggregate tags."""


def dense_ops_for(semiring: Semiring) -> DenseOps | None:
    """The registered dense operator table for ``semiring``, if any."""
    return DENSE_SEMIRING_OPS.get(semiring.name)


def aggregate_ufunc(tag: str) -> np.ufunc | None:
    """The reduction ufunc for an aggregate tag, if the tag is mappable."""
    return AGGREGATE_UFUNCS.get(tag)


class DenseFactor:
    """A factor stored as a dense ndarray over the full domain box.

    Parameters
    ----------
    scope:
        Ordered tuple of variable names (axes of ``array``).
    domains:
        Mapping from every scope variable to its full domain tuple; the
        position of a value in the tuple is its index along that axis.
    array:
        The value array; shape must equal the per-variable domain sizes.
    name:
        Optional human-readable name.
    """

    __slots__ = ("scope", "domains", "array", "name", "zero", "_digest")

    def __init__(
        self,
        scope: Sequence[str],
        domains: Mapping[str, Sequence[Any]],
        array: np.ndarray,
        name: str | None = None,
        zero: Any = None,
    ) -> None:
        self.scope: Tuple[str, ...] = tuple(scope)
        if len(set(self.scope)) != len(self.scope):
            raise FactorError(f"duplicate variables in scope {self.scope}")
        self.domains: Dict[str, Tuple[Any, ...]] = {
            v: tuple(domains[v]) for v in self.scope
        }
        self.array = np.asarray(array)
        expected = tuple(len(self.domains[v]) for v in self.scope)
        if self.array.shape != expected:
            raise FactorError(
                f"array shape {self.array.shape} does not match domain shape {expected} "
                f"for scope {self.scope}"
            )
        self.name = name if name is not None else "psi_{" + ",".join(map(str, self.scope)) + "}"
        if zero is None:
            zero = False if self.array.dtype == np.bool_ else 0
        self.zero = zero
        self._digest = None  # content-digest memo; factors are immutable

    # ------------------------------------------------------------------ #
    # basic protocol (mirrors Factor where the semantics carry over)
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        """The number of non-zero cells (the listing size ``‖ψ_S‖``)."""
        return int(np.count_nonzero(self.nonzero_mask()))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"DenseFactor({self.name}, scope={self.scope}, shape={self.array.shape})"

    @property
    def variables(self) -> frozenset:
        """The scope as a frozen set (the hyperedge ``S``)."""
        return frozenset(self.scope)

    @property
    def cells(self) -> int:
        """The total number of cells ``∏ |Dom(v)|`` (dense size)."""
        return int(self.array.size)

    def copy(self, name: str | None = None) -> "DenseFactor":
        return DenseFactor(
            self.scope, self.domains, self.array.copy(), name=name or self.name, zero=self.zero
        )

    # ------------------------------------------------------------------ #
    # immutability & updates
    # ------------------------------------------------------------------ #
    @property
    def frozen(self) -> bool:
        """``True`` once the value array has been made read-only."""
        return not self.array.flags.writeable

    def freeze(self) -> "DenseFactor":
        """Make the value array read-only; returns ``self``.

        Called by :func:`repro.planner.signature.factor_digest` when a
        content digest is memoised — after that an in-place cell write
        would silently invalidate digest-keyed cache entries, so NumPy now
        raises on it.  Updates go through :meth:`apply_delta`.
        """
        self.array.flags.writeable = False
        return self

    def apply_delta(
        self, delta, semiring: Semiring, name: str | None = None
    ) -> "DenseFactor":
        """Return a new dense factor with the delta's cell updates applied.

        ``delta`` is a :class:`~repro.factors.delta.FactorDelta` over the
        same variables; cells set to the semiring zero become explicit zero
        cells.  Raises when a cell value lies outside a domain.  ``self``
        is untouched.
        """
        index = self._index_maps()
        array = self.array.copy()
        for cell, value in delta.aligned_changes(self.scope).items():
            try:
                position = tuple(index[d][cell[d]] for d in range(len(self.scope)))
            except KeyError as exc:
                raise FactorError(
                    f"delta cell {cell!r} lies outside the domains of {self.name} ({exc})"
                ) from exc
            array[position] = value
        return DenseFactor(
            self.scope, self.domains, array, name=name or self.name, zero=self.zero
        )

    # ------------------------------------------------------------------ #
    # zero handling
    # ------------------------------------------------------------------ #
    def nonzero_mask(self, semiring: Semiring | None = None) -> np.ndarray:
        """Boolean mask of the cells that differ from the semiring zero."""
        zero = semiring.zero if semiring is not None else self.zero
        if self.array.dtype == np.bool_:
            return self.array.copy() if zero is False else ~self.array
        return self.array != zero

    def pruned(self, semiring: Semiring) -> "DenseFactor":
        """Zeros are implicit in the dense representation; returns a copy."""
        return self.copy()

    def is_identically_zero(self, semiring: Semiring) -> bool:
        return not bool(self.nonzero_mask(semiring).any())

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #
    def _index_maps(self) -> Tuple[Dict[Any, int], ...]:
        return tuple({val: i for i, val in enumerate(self.domains[v])} for v in self.scope)

    def value(self, assignment: Mapping[str, Any], semiring: Semiring) -> Any:
        """Evaluate on an assignment dict (variables outside scope ignored)."""
        try:
            key = tuple(assignment[v] for v in self.scope)
        except KeyError as exc:
            raise FactorError(f"assignment {assignment} misses scope variable {exc}") from exc
        return self.value_of_tuple(key, semiring)

    def value_of_tuple(self, key: ValueTuple, semiring: Semiring) -> Any:
        """Evaluate on a value tuple aligned with the scope."""
        key = tuple(key)
        index = []
        for v, val in zip(self.scope, key):
            try:
                index.append(self.domains[v].index(val))
            except ValueError:
                return semiring.zero
        return self.array[tuple(index)].item() if self.array.dtype != object else self.array[tuple(index)]

    # ------------------------------------------------------------------ #
    # conversions
    # ------------------------------------------------------------------ #
    @classmethod
    def from_factor(
        cls,
        factor: Factor,
        domains: Mapping[str, Sequence[Any]],
        semiring: Semiring,
        name: str | None = None,
    ) -> "DenseFactor":
        """Materialise a sparse listing factor over the full domain box."""
        ops = dense_ops_for(semiring)
        if ops is None:
            raise FactorError(
                f"semiring {semiring.name!r} has no dense operator table; "
                "register one with register_dense_ops or stay on the sparse path"
            )
        scope = factor.scope
        doms = {v: tuple(domains[v]) for v in scope}
        shape = tuple(len(doms[v]) for v in scope)
        array = np.full(shape, ops.zero, dtype=ops.dtype)
        if factor.table:
            index = tuple({val: i for i, val in enumerate(doms[v])} for v in scope)
            for key, value in factor.table.items():
                if semiring.is_zero(value):
                    continue
                try:
                    cell = tuple(index[d][key[d]] for d in range(len(scope)))
                except KeyError as exc:
                    raise FactorError(
                        f"tuple {key!r} of {factor.name} lies outside the given domains ({exc})"
                    ) from exc
                array[cell] = value
        return cls(scope, doms, array, name=name or factor.name, zero=ops.zero)

    def to_factor(self, semiring: Semiring, name: str | None = None) -> Factor:
        """Convert back to the sparse listing representation (zeros dropped)."""
        mask = self.nonzero_mask(semiring)
        table: Dict[ValueTuple, Any] = {}
        domains = [self.domains[v] for v in self.scope]
        for cell in np.argwhere(mask):
            key = tuple(domains[d][i] for d, i in enumerate(cell))
            raw = self.array[tuple(cell)]
            table[key] = raw if self.array.dtype == object else raw.item()
        return Factor(self.scope, table, name=name or self.name)

    # ------------------------------------------------------------------ #
    # projections
    # ------------------------------------------------------------------ #
    def indicator_projection(self, target: Iterable[str], semiring: Semiring) -> "DenseFactor":
        """The indicator projection ``ψ_{S/T}`` onto ``T`` (Definition 4.2)."""
        ops = dense_ops_for(semiring)
        if ops is None:
            raise FactorError(f"no dense ops for semiring {semiring.name!r}")
        target_set = set(target)
        keep = [i for i, v in enumerate(self.scope) if v in target_set]
        if not keep:
            raise FactorError(
                f"indicator projection of {self.name} onto a disjoint set {sorted(target_set)}"
            )
        drop = tuple(i for i in range(len(self.scope)) if i not in keep)
        mask = self.nonzero_mask(semiring)
        if drop:
            mask = np.logical_or.reduce(mask, axis=drop)
        new_scope = tuple(self.scope[i] for i in keep)
        array = np.where(mask, ops.one, ops.zero)
        if ops.dtype == object:
            array = array.astype(object)
        else:
            array = array.astype(ops.dtype)
        return DenseFactor(
            new_scope,
            {v: self.domains[v] for v in new_scope},
            array,
            name=self.name + f"/{{{','.join(new_scope)}}}",
            zero=ops.zero,
        )

    # ------------------------------------------------------------------ #
    # marginalisation
    # ------------------------------------------------------------------ #
    def reduce_variable(self, variable: str, ufunc: np.ufunc) -> "DenseFactor":
        """Eliminate ``variable`` by a ufunc reduction along its axis."""
        if variable not in self.scope:
            raise FactorError(f"{variable} not in scope {self.scope}")
        axis = self.scope.index(variable)
        new_scope = tuple(v for v in self.scope if v != variable)
        array = ufunc.reduce(self.array, axis=axis)
        return DenseFactor(
            new_scope,
            {v: self.domains[v] for v in new_scope},
            array,
            name=self.name + f"-agg({variable})",
            zero=self.zero,
        )

    def aggregate_marginalize(self, variable: str, tag_or_ufunc, semiring: Semiring) -> "DenseFactor":
        """Eliminate ``variable`` with a semiring aggregate.

        Accepts either an aggregate *tag* (``"sum"``, ``"max"``, ...) or a
        ufunc directly.  Unlike the sparse method this cannot take an
        arbitrary Python combine callable — callers holding only a callable
        should convert to the listing representation first.
        """
        if isinstance(tag_or_ufunc, str):
            ufunc = aggregate_ufunc(tag_or_ufunc)
            if ufunc is None:
                raise FactorError(f"aggregate tag {tag_or_ufunc!r} has no ufunc mapping")
        else:
            ufunc = tag_or_ufunc
        return self.reduce_variable(variable, ufunc)

    def product_marginalize(self, variable: str, domain_size: int, semiring: Semiring) -> "DenseFactor":
        """Eliminate ``variable`` with the product aggregate ``⊗``.

        The dense array stores the implicit zeros explicitly, so the
        annihilation rule of the sparse implementation (drop groups missing a
        domain value) is plain arithmetic here.
        """
        ops = dense_ops_for(semiring)
        if ops is None:
            raise FactorError(f"no dense ops for semiring {semiring.name!r}")
        if variable not in self.scope:
            raise FactorError(f"{variable} not in scope {self.scope}")
        if domain_size != len(self.domains[variable]):
            raise FactorError(
                f"product over {variable} expects the full domain "
                f"({len(self.domains[variable])} values), got {domain_size}"
            )
        result = self.reduce_variable(variable, ops.mul)
        result.name = self.name + f"-prod({variable})"
        return result

    # ------------------------------------------------------------------ #
    # pointwise operations
    # ------------------------------------------------------------------ #
    def power(self, exponent: int, semiring: Semiring) -> "DenseFactor":
        """Raise all cells to ``exponent`` under ``⊗`` (pointwise)."""
        ops = dense_ops_for(semiring)
        if ops is None:
            raise FactorError(f"no dense ops for semiring {semiring.name!r}")
        if exponent < 0:
            raise FactorError(f"negative exponent {exponent} in factor power")
        if exponent == 0:
            # Mirror the sparse semantics: only *listed* (non-zero) cells are
            # powered, so the implicit zeros stay zero instead of becoming 1.
            mask = self.nonzero_mask(semiring)
            array = np.where(mask, ops.one, ops.zero)
            array = array.astype(ops.dtype)
        elif ops.pow_kind == "idempotent":
            array = self.array.copy()
        elif ops.pow_kind == "add":
            array = self.array * exponent
        else:
            array = self.array**exponent
        return DenseFactor(
            self.scope, self.domains, array, name=self.name + f"^{exponent}", zero=ops.zero
        )

    def has_idempotent_range(self, semiring: Semiring) -> bool:
        """``True`` iff every cell is ⊗-idempotent (Definition 5.2)."""
        ops = dense_ops_for(semiring)
        if ops is None or self.array.dtype == object:
            return all(semiring.is_mul_idempotent(v) for v in self.array.flat)
        if ops.pow_kind == "idempotent":
            return True
        squared = ops.mul(self.array, self.array)
        with np.errstate(invalid="ignore"):
            scale = np.maximum(1.0, np.maximum(np.abs(squared), np.abs(self.array)))
            close = np.abs(squared - self.array) <= 1e-9 * scale
        return bool(np.all(close))

    # ------------------------------------------------------------------ #
    # binary operations
    # ------------------------------------------------------------------ #
    def multiply(self, other: "DenseFactor", semiring: Semiring) -> "DenseFactor":
        """Pointwise product ``ψ_S ⊗ ψ_T`` over scope ``S ∪ T`` (dense join)."""
        if not isinstance(other, DenseFactor):
            raise FactorError(
                "DenseFactor.multiply requires a DenseFactor operand; use "
                "repro.factors.backend.multiply_factors for mixed representations"
            )
        ops = dense_ops_for(semiring)
        if ops is None:
            raise FactorError(f"no dense ops for semiring {semiring.name!r}")
        target = self.scope + tuple(v for v in other.scope if v not in self.scope)
        domains = dict(self.domains)
        for v in other.scope:
            if v in domains and domains[v] != other.domains[v]:
                raise FactorError(f"domain mismatch for {v} between {self.name} and {other.name}")
            domains.setdefault(v, other.domains[v])
        array = ops.mul(aligned_array(self, target), aligned_array(other, target))
        return DenseFactor(
            target, domains, array, name=f"({self.name}*{other.name})", zero=ops.zero
        )

    def normalize_scope(self, order: Sequence[str]) -> "DenseFactor":
        """Return an equivalent factor whose scope follows ``order``."""
        position = {v: i for i, v in enumerate(order)}
        new_scope = tuple(sorted(self.scope, key=lambda v: (position.get(v, len(order)), v)))
        if new_scope == self.scope:
            return self.copy()
        perm = [self.scope.index(v) for v in new_scope]
        return DenseFactor(
            new_scope, self.domains, self.array.transpose(perm), name=self.name, zero=self.zero
        )

    # ------------------------------------------------------------------ #
    # comparisons
    # ------------------------------------------------------------------ #
    def equals(self, other, semiring: Semiring) -> bool:
        """Semantic equality with another factor (dense or sparse)."""
        mine = self.to_factor(semiring)
        theirs = other.to_factor(semiring) if isinstance(other, DenseFactor) else other
        return mine.equals(theirs, semiring)


def aligned_array(dense: DenseFactor, target_scope: Sequence[str]) -> np.ndarray:
    """View ``dense.array`` broadcastable against a target scope.

    The factor's axes are permuted into target order and size-1 axes are
    inserted for target variables outside the factor's scope, so that NumPy
    broadcasting implements the scope-union join.
    """
    position = {v: i for i, v in enumerate(dense.scope)}
    perm = [position[v] for v in target_scope if v in position]
    if len(perm) != len(dense.scope):
        missing = [v for v in dense.scope if v not in set(target_scope)]
        raise FactorError(f"target scope {tuple(target_scope)} misses factor variables {missing}")
    array = dense.array.transpose(perm)
    sizes = iter(array.shape)
    shape = tuple(next(sizes) if v in position else 1 for v in target_scope)
    return array.reshape(shape)

"""Factor updates as values: the :class:`FactorDelta` type.

Factors are immutable once they have been content-digested (see
:func:`repro.planner.signature.factor_digest`) — every digest-keyed cache
in the engine relies on a digest never going stale.  Updates therefore
travel as explicit *delta values*: a :class:`FactorDelta` names the cells
of one factor that change and the values they change to, and
``Factor.apply_delta`` / ``DenseFactor.apply_delta`` produce a **new**
factor (with a new digest) instead of mutating the old one.

A delta's ``changes`` map cell tuples (aligned with the delta's scope) to
their *new* values; setting a cell to the semiring zero deletes it from
the listing representation.  The incremental layer
(:mod:`repro.incremental`) consumes the same type to decide between delta
propagation, monotone append and dirty-subgraph re-execution.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, Mapping, Sequence, Tuple

from repro.factors.factor import FactorError
from repro.semiring.base import Semiring

ValueTuple = Tuple[Any, ...]


class FactorDelta:
    """A set of cell updates against one factor.

    Parameters
    ----------
    scope:
        The scope the cell tuples are aligned with.  It must name the same
        variables as the target factor's scope (any order — cells are
        permuted on application).
    changes:
        Mapping from cell tuples to their new values.  A value equal to
        the semiring zero means *delete this cell* (listing factors drop
        it; dense factors store the explicit zero).
    """

    __slots__ = ("scope", "changes")

    def __init__(
        self,
        scope: Sequence[str],
        changes: Mapping[ValueTuple, Any] | Iterable[Tuple[ValueTuple, Any]],
    ) -> None:
        self.scope: Tuple[str, ...] = tuple(scope)
        if len(set(self.scope)) != len(self.scope):
            raise FactorError(f"duplicate variables in delta scope {self.scope}")
        if isinstance(changes, Mapping):
            items: Iterable[Tuple[ValueTuple, Any]] = changes.items()
        else:
            items = changes
        arity = len(self.scope)
        self.changes: Dict[ValueTuple, Any] = {}
        for key, value in items:
            key = tuple(key)
            if len(key) != arity:
                raise FactorError(
                    f"delta cell {key!r} has arity {len(key)}, "
                    f"scope {self.scope} has arity {arity}"
                )
            self.changes[key] = value

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.changes)

    def __iter__(self) -> Iterator[Tuple[ValueTuple, Any]]:
        return iter(self.changes.items())

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"FactorDelta(scope={self.scope}, cells={len(self.changes)})"

    # ------------------------------------------------------------------ #
    def aligned_changes(self, scope: Sequence[str]) -> Dict[ValueTuple, Any]:
        """The changes with cell tuples permuted onto ``scope``.

        Raises :class:`~repro.factors.factor.FactorError` when the two
        scopes do not name the same variables.
        """
        scope = tuple(scope)
        if set(scope) != set(self.scope):
            raise FactorError(
                f"delta scope {self.scope} does not match factor scope {scope}"
            )
        if scope == self.scope:
            return dict(self.changes)
        perm = [self.scope.index(v) for v in scope]
        return {
            tuple(key[i] for i in perm): value
            for key, value in self.changes.items()
        }

    def effective_changes(
        self, factor: Any, semiring: Semiring
    ) -> Dict[ValueTuple, Any]:
        """The changes that actually alter ``factor``, aligned to its scope.

        Cells whose new value equals the factor's current value (under
        ``semiring.values_equal``) are dropped — they would churn digests
        and caches without changing the answer.
        """
        aligned = self.aligned_changes(factor.scope)
        return {
            cell: value
            for cell, value in aligned.items()
            if not semiring.values_equal(factor.value_of_tuple(cell, semiring), value)
        }

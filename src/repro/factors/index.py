"""Hash-trie indexes over factors, used by the OutsideIn join.

The OutsideIn algorithm (Section 5.1.1 of the paper) is a backtracking
search that binds variables one at a time in a *global* variable order and,
at each level, intersects the candidate values offered by every factor whose
scope contains the current variable.  To make each intersection step cheap we
index every factor as a trie whose levels follow the global order restricted
to the factor's scope — the classic structure behind worst-case-optimal join
algorithms such as LeapFrog TrieJoin and Generic Join.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Sequence, Tuple

from repro.factors.factor import Factor
from repro.semiring.base import Semiring

ValueTuple = Tuple[Any, ...]

_LEAF = "__leaf__"


class FactorTrie:
    """A trie over a factor's non-zero tuples, ordered by a global order.

    Parameters
    ----------
    factor:
        The factor to index.
    order:
        Global variable order.  The trie levels are the factor's scope
        variables sorted by their position in ``order``; scope variables not
        present in ``order`` are an error.
    semiring:
        Used to skip explicit zero entries.
    """

    __slots__ = ("factor", "variables", "root")

    def __init__(self, factor: Factor, order: Sequence[str], semiring: Semiring) -> None:
        position = {v: i for i, v in enumerate(order)}
        missing = [v for v in factor.scope if v not in position]
        if missing:
            raise ValueError(f"order {list(order)} misses scope variables {missing}")
        self.factor = factor
        self.variables: Tuple[str, ...] = tuple(
            sorted(factor.scope, key=lambda v: position[v])
        )
        perm = [factor.scope.index(v) for v in self.variables]
        root: Dict[Any, Any] = {}
        for key, value in factor.table.items():
            if semiring.is_zero(value):
                continue
            node = root
            for idx in perm[:-1] if perm else []:
                node = node.setdefault(key[idx], {})
            if perm:
                last = key[perm[-1]]
                leaf = node.setdefault(last, {})
                leaf[_LEAF] = value
            else:
                root[_LEAF] = value
        self.root = root

    # ------------------------------------------------------------------ #
    @property
    def depth(self) -> int:
        """Number of trie levels (the factor arity)."""
        return len(self.variables)

    def children(self, prefix: ValueTuple) -> Dict[Any, Any]:
        """Return the child map at ``prefix`` (values of the next variable).

        ``prefix`` is a tuple of values for ``self.variables[:len(prefix)]``.
        Returns an empty dict if the prefix is not present.
        """
        node = self.root
        for value in prefix:
            node = node.get(value)
            if node is None:
                return {}
        return {k: v for k, v in node.items() if k != _LEAF}

    def candidate_values(self, prefix: ValueTuple) -> set:
        """Set of values of the next variable compatible with ``prefix``."""
        return set(self.children(prefix).keys())

    def has_prefix(self, prefix: ValueTuple) -> bool:
        """``True`` iff some listed tuple extends ``prefix``."""
        node = self.root
        for value in prefix:
            node = node.get(value)
            if node is None:
                return False
        return True

    def value(self, full: ValueTuple, default: Any = None) -> Any:
        """The stored value for a complete tuple over ``self.variables``."""
        node = self.root
        for value in full:
            node = node.get(value)
            if node is None:
                return default
        return node.get(_LEAF, default)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"FactorTrie({self.factor.name}, levels={self.variables})"


def build_tries(
    factors: Iterable[Factor], order: Sequence[str], semiring: Semiring
) -> list:
    """Index every factor against the same global ``order``."""
    return [FactorTrie(f, order, semiring) for f in factors]


class TrieCache:
    """Per-run trie index shared across elimination steps.

    InsideOut's hot loop used to rebuild every participant's hash index at
    every elimination step, even though most factors survive many steps
    unchanged.  A :class:`TrieCache` is created once per run with the run's
    global variable order and hands out

    * :meth:`trie` — the :class:`FactorTrie` of a factor, built once per
      factor object (dense factors are converted to the listing
      representation once and indexed from that), and
    * :meth:`projection` — the indicator projection of a factor onto an
      overlap set *and* its trie, built once per ``(factor, overlap)`` pair
      (the same projection recurs whenever later steps induce the same
      overlap).

    Entries are keyed by object identity; the cache holds a reference to
    the keyed factor so the identity cannot be recycled while the entry
    lives.  :meth:`discard` drops entries for factors consumed by a step.
    """

    __slots__ = ("order", "semiring", "_tries", "_projections", "_projection_keys")

    def __init__(self, order: Sequence[str], semiring: Semiring) -> None:
        self.order: Tuple[str, ...] = tuple(order)
        self.semiring = semiring
        self._tries: Dict[int, Tuple[Any, FactorTrie]] = {}
        # key -> [source factor, projected factor, trie or None (lazy)]
        self._projections: Dict[Tuple[int, frozenset], list] = {}
        self._projection_keys: Dict[int, set] = {}

    def trie(self, factor) -> FactorTrie:
        key = id(factor)
        entry = self._tries.get(key)
        if entry is None or entry[0] is not factor:
            from repro.factors.backend import as_sparse

            sparse = as_sparse(factor, self.semiring)
            entry = (factor, FactorTrie(sparse, self.order, self.semiring))
            self._tries[key] = entry
        return entry[1]

    def _projection_entry(self, factor, overlap: Iterable[str]) -> list:
        overlap_key = frozenset(overlap)
        key = (id(factor), overlap_key)
        entry = self._projections.get(key)
        if entry is None or entry[0] is not factor:
            from repro.factors.backend import as_sparse

            sparse = as_sparse(factor, self.semiring)
            projected = sparse.indicator_projection(overlap_key, self.semiring)
            entry = [factor, projected, None]
            self._projections[key] = entry
            self._projection_keys.setdefault(id(factor), set()).add(key)
        return entry

    def projection_factor(self, factor, overlap: Iterable[str]) -> Factor:
        """The cached indicator projection of ``factor`` onto ``overlap``.

        Does *not* build the projection's trie — steps that end up on the
        dense path never need one (see :meth:`projection` for the trie).
        """
        return self._projection_entry(factor, overlap)[1]

    def projection(self, factor, overlap: Iterable[str]) -> Tuple[Factor, FactorTrie]:
        """The indicator projection of ``factor`` onto ``overlap`` + its trie."""
        entry = self._projection_entry(factor, overlap)
        if entry[2] is None:
            entry[2] = FactorTrie(entry[1], self.order, self.semiring)
        return entry[1], entry[2]

    def discard(self, factor) -> None:
        """Drop the tries of a factor consumed by an elimination step."""
        self._tries.pop(id(factor), None)
        for key in self._projection_keys.pop(id(factor), ()):
            self._projections.pop(key, None)

"""Hash-trie indexes over factors, used by the OutsideIn join.

The OutsideIn algorithm (Section 5.1.1 of the paper) is a backtracking
search that binds variables one at a time in a *global* variable order and,
at each level, intersects the candidate values offered by every factor whose
scope contains the current variable.  To make each intersection step cheap we
index every factor as a trie whose levels follow the global order restricted
to the factor's scope — the classic structure behind worst-case-optimal join
algorithms such as LeapFrog TrieJoin and Generic Join.

Three index holders live here:

* :class:`FactorTrie` — one factor's trie.  Builds from the listing
  representation or (via :meth:`FactorTrie.from_dense`) directly from a
  dense ndarray factor's non-zero cells, skipping the dense → listing
  round trip mixed ``auto`` plans used to pay.
* :class:`TrieCache` — the per-run index shared across one InsideOut run's
  elimination steps (optionally thread-safe for the parallel executor).
* :class:`SharedTrieCache` — a cross-run store for *base* factors' tries
  and indicator projections, used by :mod:`repro.serve` so repeated
  identical queries stop re-indexing their input factors on every
  execution.
"""

from __future__ import annotations

import threading
from contextlib import nullcontext
from typing import Any, Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.factors.factor import Factor
from repro.semiring.base import Semiring

ValueTuple = Tuple[Any, ...]

_LEAF = "__leaf__"


class FactorTrie:
    """A trie over a factor's non-zero tuples, ordered by a global order.

    Parameters
    ----------
    factor:
        The factor to index.
    order:
        Global variable order.  The trie levels are the factor's scope
        variables sorted by their position in ``order``; scope variables not
        present in ``order`` are an error.
    semiring:
        Used to skip explicit zero entries.
    """

    __slots__ = ("factor", "variables", "root")

    def __init__(self, factor: Factor, order: Sequence[str], semiring: Semiring) -> None:
        position = {v: i for i, v in enumerate(order)}
        missing = [v for v in factor.scope if v not in position]
        if missing:
            raise ValueError(f"order {list(order)} misses scope variables {missing}")
        self.factor = factor
        self.variables: Tuple[str, ...] = tuple(
            sorted(factor.scope, key=lambda v: position[v])
        )
        perm = [factor.scope.index(v) for v in self.variables]
        root: Dict[Any, Any] = {}
        for key, value in factor.table.items():
            if semiring.is_zero(value):
                continue
            node = root
            for idx in perm[:-1] if perm else []:
                node = node.setdefault(key[idx], {})
            if perm:
                last = key[perm[-1]]
                leaf = node.setdefault(last, {})
                leaf[_LEAF] = value
            else:
                root[_LEAF] = value
        self.root = root

    @classmethod
    def from_dense(cls, dense, order: Sequence[str], semiring: Semiring) -> "FactorTrie":
        """Index a :class:`~repro.factors.dense.DenseFactor` directly.

        Builds the trie in one pass over the array's non-zero cells instead
        of materialising an intermediate listing ``Factor`` first (the
        dense → listing → trie round trip a sparse step following a dense
        one used to pay under ``backend="auto"``).  The inserted values are
        exactly those ``DenseFactor.to_factor`` would produce, so the
        resulting trie is interchangeable with the converted one.
        """
        position = {v: i for i, v in enumerate(order)}
        missing = [v for v in dense.scope if v not in position]
        if missing:
            raise ValueError(f"order {list(order)} misses scope variables {missing}")
        self = cls.__new__(cls)
        self.factor = dense
        self.variables = tuple(sorted(dense.scope, key=lambda v: position[v]))
        perm = [dense.scope.index(v) for v in self.variables]
        root: Dict[Any, Any] = {}
        mask = dense.nonzero_mask(semiring)
        domains = [dense.domains[v] for v in dense.scope]
        array = dense.array
        is_object = array.dtype == object
        for cell in np.argwhere(mask):
            raw = array[tuple(cell)]
            value = raw if is_object else raw.item()
            node = root
            for idx in perm[:-1] if perm else []:
                node = node.setdefault(domains[idx][cell[idx]], {})
            if perm:
                last = domains[perm[-1]][cell[perm[-1]]]
                leaf = node.setdefault(last, {})
                leaf[_LEAF] = value
            else:
                root[_LEAF] = value
        self.root = root
        return self

    # ------------------------------------------------------------------ #
    @property
    def depth(self) -> int:
        """Number of trie levels (the factor arity)."""
        return len(self.variables)

    def children(self, prefix: ValueTuple) -> Dict[Any, Any]:
        """Return the child map at ``prefix`` (values of the next variable).

        ``prefix`` is a tuple of values for ``self.variables[:len(prefix)]``.
        Returns an empty dict if the prefix is not present.
        """
        node = self.root
        for value in prefix:
            node = node.get(value)
            if node is None:
                return {}
        return {k: v for k, v in node.items() if k != _LEAF}

    def candidate_values(self, prefix: ValueTuple) -> set:
        """Set of values of the next variable compatible with ``prefix``."""
        return set(self.children(prefix).keys())

    def has_prefix(self, prefix: ValueTuple) -> bool:
        """``True`` iff some listed tuple extends ``prefix``."""
        node = self.root
        for value in prefix:
            node = node.get(value)
            if node is None:
                return False
        return True

    def value(self, full: ValueTuple, default: Any = None) -> Any:
        """The stored value for a complete tuple over ``self.variables``."""
        node = self.root
        for value in full:
            node = node.get(value)
            if node is None:
                return default
        return node.get(_LEAF, default)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"FactorTrie({self.factor.name}, levels={self.variables})"


def build_trie(factor, order: Sequence[str], semiring: Semiring) -> FactorTrie:
    """Index one factor, dispatching on its representation.

    Dense factors are indexed straight from their ndarray cells
    (:meth:`FactorTrie.from_dense`); sparse factors through the ordinary
    constructor.
    """
    from repro.factors.dense import DenseFactor

    if isinstance(factor, DenseFactor):
        return FactorTrie.from_dense(factor, order, semiring)
    return FactorTrie(factor, order, semiring)


def build_tries(
    factors: Iterable[Factor], order: Sequence[str], semiring: Semiring
) -> list:
    """Index every factor against the same global ``order``."""
    return [build_trie(f, order, semiring) for f in factors]


class SharedTrieCache:
    """Cross-run trie store for a query's *base* factors.

    A per-run :class:`TrieCache` dies with its run, so repeated executions
    of the identical query re-index the same input factors every time.  The
    serving layer (:mod:`repro.serve`) keeps one ``SharedTrieCache`` per
    (query, ordering) and hands it to each run as the :class:`TrieCache`
    parent: base-factor tries and indicator projections are built once and
    survive across runs.  Entries are keyed by object identity and the
    factors are pinned (the cache holds the query's factor list), so a
    recycled ``id()`` can never resolve to a stale trie.

    All methods are thread-safe — concurrent runs of the same query may
    populate the store simultaneously (both build the same trie; the first
    store wins, the results are equal).
    """

    __slots__ = ("order", "semiring", "hits", "misses", "_factors", "_ids",
                 "_tries", "_projections", "_lock")

    def __init__(self, order: Sequence[str], semiring: Semiring, factors: Sequence[Any]) -> None:
        self.order: Tuple[str, ...] = tuple(order)
        self.semiring = semiring
        self.hits = 0
        self.misses = 0
        self._factors = list(factors)  # pins the ids below
        self._ids = frozenset(id(f) for f in self._factors)
        self._tries: Dict[int, FactorTrie] = {}
        # (id, overlap) -> [projected factor, trie or None (lazy)]
        self._projections: Dict[Tuple[int, frozenset], list] = {}
        self._lock = threading.Lock()

    def covers(self, factor) -> bool:
        """Whether ``factor`` is one of the base factors this store serves."""
        return id(factor) in self._ids

    def trie(self, factor) -> FactorTrie:
        key = id(factor)
        with self._lock:
            trie = self._tries.get(key)
            if trie is not None:
                self.hits += 1
                return trie
            self.misses += 1
        trie = build_trie(factor, self.order, self.semiring)
        with self._lock:
            return self._tries.setdefault(key, trie)

    def projection_entry(self, factor, overlap: frozenset) -> list:
        """The cached ``[projected, trie-or-None]`` pair for a projection."""
        from repro.factors.backend import as_sparse

        key = (id(factor), overlap)
        with self._lock:
            entry = self._projections.get(key)
            if entry is not None:
                self.hits += 1
                return entry
            self.misses += 1
        sparse = as_sparse(factor, self.semiring)
        projected = sparse.indicator_projection(overlap, self.semiring)
        with self._lock:
            return self._projections.setdefault(key, [projected, None])

    def projection_trie(self, entry: list) -> FactorTrie:
        """The (lazily built) trie of a projection entry."""
        with self._lock:
            if entry[1] is not None:
                return entry[1]
        trie = FactorTrie(entry[0], self.order, self.semiring)
        with self._lock:
            if entry[1] is None:
                entry[1] = trie
            return entry[1]


class TrieCache:
    """Per-run trie index shared across elimination steps.

    InsideOut's hot loop used to rebuild every participant's hash index at
    every elimination step, even though most factors survive many steps
    unchanged.  A :class:`TrieCache` is created once per run with the run's
    global variable order and hands out

    * :meth:`trie` — the :class:`FactorTrie` of a factor, built once per
      factor object (dense factors are indexed straight from their ndarray
      cells), and
    * :meth:`projection` — the indicator projection of a factor onto an
      overlap set *and* its trie, built once per ``(factor, overlap)`` pair
      (the same projection recurs whenever later steps induce the same
      overlap).

    Entries are keyed by object identity; the cache holds a reference to
    the keyed factor so the identity cannot be recycled while the entry
    lives.  :meth:`discard` drops entries for factors consumed by a step.

    ``thread_safe=True`` (used by the parallel DAG executor) guards the
    entry maps and the ``hits``/``misses`` counters with a lock so stats
    stay exact under the worker pool; tries themselves are built outside
    the lock (two threads may build the same trie — the first store wins
    and both results are equal).  ``adopt_parent`` plugs in a
    :class:`SharedTrieCache` whose base-factor entries are consulted first
    and never discarded.
    """

    __slots__ = ("order", "semiring", "hits", "misses", "_tries", "_projections",
                 "_projection_keys", "_lock", "_parent", "_flats", "_flat_ctx")

    def __init__(
        self, order: Sequence[str], semiring: Semiring, thread_safe: bool = False
    ) -> None:
        self.order: Tuple[str, ...] = tuple(order)
        self.semiring = semiring
        self.hits = 0
        self.misses = 0
        self._tries: Dict[int, Tuple[Any, FactorTrie]] = {}
        # key -> [source factor, projected factor, trie or None (lazy)]
        self._projections: Dict[Tuple[int, frozenset], list] = {}
        self._projection_keys: Dict[int, set] = {}
        self._lock = threading.RLock() if thread_safe else nullcontext()
        self._parent: Optional[SharedTrieCache] = None
        # id -> (factor pin, FlatFactor | False): per-run flat encodings for
        # the vectorized kernel; False caches a failed encode so ineligible
        # factors are probed once.  Discarded together with the tries.
        self._flats: Dict[int, Tuple[Any, Any]] = {}
        self._flat_ctx: Any = None

    def adopt_parent(self, parent: Optional[SharedTrieCache]) -> None:
        """Consult ``parent`` for base-factor tries before building locally.

        A parent built against a different global order or semiring is
        silently ignored — its tries would be ordered wrong for this run.
        """
        if parent is None:
            return
        if parent.order != self.order or parent.semiring is not self.semiring:
            return
        self._parent = parent

    def trie(self, factor) -> FactorTrie:
        key = id(factor)
        with self._lock:
            entry = self._tries.get(key)
            if entry is not None and entry[0] is factor:
                self.hits += 1
                return entry[1]
            self.misses += 1
        if self._parent is not None and self._parent.covers(factor):
            trie = self._parent.trie(factor)
        else:
            trie = build_trie(factor, self.order, self.semiring)
        with self._lock:
            stored = self._tries.get(key)
            if stored is not None and stored[0] is factor:
                return stored[1]
            self._tries[key] = (factor, trie)
        return trie

    def _projection_entry(self, factor, overlap: Iterable[str]) -> list:
        overlap_key = frozenset(overlap)
        key = (id(factor), overlap_key)
        with self._lock:
            entry = self._projections.get(key)
            if entry is not None and entry[0] is factor:
                self.hits += 1
                return entry
            self.misses += 1
        if self._parent is not None and self._parent.covers(factor):
            shared = self._parent.projection_entry(factor, overlap_key)
            entry = [factor, shared[0], None, shared]
        else:
            from repro.factors.backend import as_sparse

            sparse = as_sparse(factor, self.semiring)
            projected = sparse.indicator_projection(overlap_key, self.semiring)
            entry = [factor, projected, None, None]
        with self._lock:
            stored = self._projections.get(key)
            if stored is not None and stored[0] is factor:
                return stored
            self._projections[key] = entry
            self._projection_keys.setdefault(id(factor), set()).add(key)
        return entry

    def projection_factor(self, factor, overlap: Iterable[str]) -> Factor:
        """The cached indicator projection of ``factor`` onto ``overlap``.

        Does *not* build the projection's trie — steps that end up on the
        dense path never need one (see :meth:`projection` for the trie).
        """
        return self._projection_entry(factor, overlap)[1]

    def projection(self, factor, overlap: Iterable[str]) -> Tuple[Factor, FactorTrie]:
        """The indicator projection of ``factor`` onto ``overlap`` + its trie."""
        entry = self._projection_entry(factor, overlap)
        if entry[2] is None:
            if entry[3] is not None:  # backed by the shared parent store
                entry[2] = self._parent.projection_trie(entry[3])
            else:
                entry[2] = FactorTrie(entry[1], self.order, self.semiring)
        return entry[1], entry[2]

    def flat_context(self, domains):
        """The run's flat-encoding context, built once (``None`` if unmapped).

        A run evaluates a single query, so the ``domains`` mapping is the
        same at every call — the first one wins.
        """
        from repro.factors.flat import flat_context

        with self._lock:
            if self._flat_ctx is None:
                self._flat_ctx = flat_context(self.semiring, domains) or False
            return self._flat_ctx or None

    def flat(self, factor, ctx):
        """The cached flat encoding of ``factor`` (``None`` if it has none)."""
        from repro.factors.flat import encode_flat

        key = id(factor)
        with self._lock:
            entry = self._flats.get(key)
            if entry is not None and entry[0] is factor:
                self.hits += 1
                return entry[1] or None
            self.misses += 1
        encoded = encode_flat(factor, ctx)
        with self._lock:
            stored = self._flats.get(key)
            if stored is not None and stored[0] is factor:
                return stored[1] or None
            self._flats[key] = (factor, encoded if encoded is not None else False)
        return encoded

    def store_flat(self, factor, flat) -> None:
        """Register a step result's flat encoding for downstream steps."""
        with self._lock:
            self._flats[id(factor)] = (factor, flat)

    def discard(self, factor) -> None:
        """Drop the tries of a factor consumed by an elimination step.

        Parent (:class:`SharedTrieCache`) entries are never discarded —
        they exist precisely to survive into the next run of the query.
        """
        with self._lock:
            self._tries.pop(id(factor), None)
            self._flats.pop(id(factor), None)
            for key in self._projection_keys.pop(id(factor), ()):
                self._projections.pop(key, None)

    def counters(self) -> Dict[str, int]:
        """A snapshot of the hit/miss counters (exact under the pool)."""
        with self._lock:
            return {"hits": self.hits, "misses": self.misses}

"""Hash-trie indexes over factors, used by the OutsideIn join.

The OutsideIn algorithm (Section 5.1.1 of the paper) is a backtracking
search that binds variables one at a time in a *global* variable order and,
at each level, intersects the candidate values offered by every factor whose
scope contains the current variable.  To make each intersection step cheap we
index every factor as a trie whose levels follow the global order restricted
to the factor's scope — the classic structure behind worst-case-optimal join
algorithms such as LeapFrog TrieJoin and Generic Join.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Sequence, Tuple

from repro.factors.factor import Factor
from repro.semiring.base import Semiring

ValueTuple = Tuple[Any, ...]

_LEAF = "__leaf__"


class FactorTrie:
    """A trie over a factor's non-zero tuples, ordered by a global order.

    Parameters
    ----------
    factor:
        The factor to index.
    order:
        Global variable order.  The trie levels are the factor's scope
        variables sorted by their position in ``order``; scope variables not
        present in ``order`` are an error.
    semiring:
        Used to skip explicit zero entries.
    """

    __slots__ = ("factor", "variables", "root")

    def __init__(self, factor: Factor, order: Sequence[str], semiring: Semiring) -> None:
        position = {v: i for i, v in enumerate(order)}
        missing = [v for v in factor.scope if v not in position]
        if missing:
            raise ValueError(f"order {list(order)} misses scope variables {missing}")
        self.factor = factor
        self.variables: Tuple[str, ...] = tuple(
            sorted(factor.scope, key=lambda v: position[v])
        )
        perm = [factor.scope.index(v) for v in self.variables]
        root: Dict[Any, Any] = {}
        for key, value in factor.table.items():
            if semiring.is_zero(value):
                continue
            node = root
            for idx in perm[:-1] if perm else []:
                node = node.setdefault(key[idx], {})
            if perm:
                last = key[perm[-1]]
                leaf = node.setdefault(last, {})
                leaf[_LEAF] = value
            else:
                root[_LEAF] = value
        self.root = root

    # ------------------------------------------------------------------ #
    @property
    def depth(self) -> int:
        """Number of trie levels (the factor arity)."""
        return len(self.variables)

    def children(self, prefix: ValueTuple) -> Dict[Any, Any]:
        """Return the child map at ``prefix`` (values of the next variable).

        ``prefix`` is a tuple of values for ``self.variables[:len(prefix)]``.
        Returns an empty dict if the prefix is not present.
        """
        node = self.root
        for value in prefix:
            node = node.get(value)
            if node is None:
                return {}
        return {k: v for k, v in node.items() if k != _LEAF}

    def candidate_values(self, prefix: ValueTuple) -> set:
        """Set of values of the next variable compatible with ``prefix``."""
        return set(self.children(prefix).keys())

    def has_prefix(self, prefix: ValueTuple) -> bool:
        """``True`` iff some listed tuple extends ``prefix``."""
        node = self.root
        for value in prefix:
            node = node.get(value)
            if node is None:
                return False
        return True

    def value(self, full: ValueTuple, default: Any = None) -> Any:
        """The stored value for a complete tuple over ``self.variables``."""
        node = self.root
        for value in full:
            node = node.get(value)
            if node is None:
                return default
        return node.get(_LEAF, default)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"FactorTrie({self.factor.name}, levels={self.variables})"


def build_tries(
    factors: Iterable[Factor], order: Sequence[str], semiring: Semiring
) -> list:
    """Index every factor against the same global ``order``."""
    return [FactorTrie(f, order, semiring) for f in factors]

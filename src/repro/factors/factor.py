"""The :class:`Factor` class — sparse factors in the listing representation.

A factor ``ψ_S`` over scope ``S = (v_1, ..., v_s)`` is stored as a mapping
from value tuples ``(x_{v_1}, ..., x_{v_s})`` to non-zero semiring values.
Tuples absent from the table are implicitly ``0`` (the semiring's additive
identity, which annihilates under ``⊗``).

All operations that need to interpret values (detect zeros, multiply,
aggregate) take the :class:`~repro.semiring.base.Semiring` as an explicit
argument: a factor is just data, the algebra lives in the query.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, Mapping, Sequence, Tuple

from repro.semiring.base import Semiring

Assignment = Mapping[str, Any]
ValueTuple = Tuple[Any, ...]


class FactorError(ValueError):
    """Raised on inconsistent factor construction or use."""


def _frozen_table_write(self, *args, **kwargs):
    raise FactorError(
        "factor table is frozen: the factor has been content-digested and "
        "digest-keyed caches may hold results derived from it.  Build an "
        "updated factor with Factor.apply_delta (or construct a new Factor) "
        "instead of mutating the table in place."
    )


class _FrozenTable(dict):
    """A read-only factor table.

    Reads stay plain C-speed ``dict`` operations; every mutating method
    raises :class:`FactorError`.  Installed by :meth:`Factor.freeze` once a
    factor has been content-digested — an in-place table change after that
    point would silently invalidate every digest-keyed cache entry derived
    from the factor (step results, shared tries, completed serve results).
    """

    __slots__ = ()

    __setitem__ = _frozen_table_write
    __delitem__ = _frozen_table_write
    __ior__ = _frozen_table_write
    pop = _frozen_table_write
    popitem = _frozen_table_write
    clear = _frozen_table_write
    update = _frozen_table_write
    setdefault = _frozen_table_write

    def __reduce__(self):
        # Pickle as a plain dict: a factor crossing a process boundary is a
        # fresh object whose digest memo is recomputed (and re-frozen) on
        # first use in the receiving process.
        return (dict, (dict(self),))


class Factor:
    """A sparse factor over a tuple of named variables.

    Parameters
    ----------
    scope:
        Ordered tuple of variable names the factor depends on.  Variable
        names must be unique within the scope.
    table:
        Mapping from value tuples (aligned with ``scope``) to semiring
        values.  Entries equal to the semiring zero may be present; use
        :meth:`pruned` to drop them.
    name:
        Optional human-readable name (defaults to ``psi_{scope}``).
    """

    __slots__ = ("scope", "table", "name", "_variables", "_digest")

    def __init__(
        self,
        scope: Sequence[str],
        table: Mapping[ValueTuple, Any] | Iterable[Tuple[ValueTuple, Any]],
        name: str | None = None,
    ) -> None:
        self.scope: Tuple[str, ...] = tuple(scope)
        if len(set(self.scope)) != len(self.scope):
            raise FactorError(f"duplicate variables in scope {self.scope}")
        if isinstance(table, Mapping):
            items: Iterable[Tuple[ValueTuple, Any]] = table.items()
        else:
            items = table
        self.table: Dict[ValueTuple, Any] = {}
        arity = len(self.scope)
        for key, value in items:
            key = tuple(key)
            if len(key) != arity:
                raise FactorError(
                    f"tuple {key!r} has arity {len(key)}, scope {self.scope} has arity {arity}"
                )
            self.table[key] = value
        self.name = name if name is not None else "psi_{" + ",".join(map(str, self.scope)) + "}"
        self._variables: frozenset | None = None
        self._digest: str | None = None  # content-digest memo; factors are immutable

    # ------------------------------------------------------------------ #
    # basic protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        """The factor size ``‖ψ_S‖``: the number of listed (non-zero) tuples."""
        return len(self.table)

    def __iter__(self) -> Iterator[Tuple[ValueTuple, Any]]:
        return iter(self.table.items())

    def __contains__(self, key: ValueTuple) -> bool:
        return tuple(key) in self.table

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Factor({self.name}, scope={self.scope}, size={len(self)})"

    @property
    def variables(self) -> frozenset:
        """The scope as a frozen set (the hyperedge ``S``), built lazily once."""
        if self._variables is None:
            self._variables = frozenset(self.scope)
        return self._variables

    def copy(self, name: str | None = None) -> "Factor":
        """Return a shallow copy (table dict is copied, values are shared).

        The copy's table is a fresh mutable dict even when this factor is
        frozen, and the copy carries no digest memo.
        """
        return Factor(self.scope, dict(self.table), name=name or self.name)

    # ------------------------------------------------------------------ #
    # immutability & updates
    # ------------------------------------------------------------------ #
    @property
    def frozen(self) -> bool:
        """``True`` once the table has been frozen (mutation raises)."""
        return isinstance(self.table, _FrozenTable)

    def freeze(self) -> "Factor":
        """Make the table read-only; returns ``self``.

        Called by :func:`repro.planner.signature.factor_digest` the moment
        a content digest is memoised: from then on the digest certifies the
        table's content to every cache keyed on it, so in-place mutation
        must fail loudly instead of serving stale answers.  Updates go
        through :meth:`apply_delta`, which returns a *new* factor.
        """
        if not isinstance(self.table, _FrozenTable):
            self.table = _FrozenTable(self.table)
        return self

    def apply_delta(
        self, delta, semiring: Semiring, name: str | None = None
    ) -> "Factor":
        """Return a new factor with the delta's cell updates applied.

        ``delta`` is a :class:`~repro.factors.delta.FactorDelta` over the
        same variables (any scope order).  Cells set to the semiring zero
        are removed from the listing; other cells are inserted or
        overwritten.  ``self`` is untouched — the returned factor is a new
        object with no digest memo, so every content-addressed layer sees
        the update as new content.
        """
        table: Dict[ValueTuple, Any] = dict(self.table)
        for cell, value in delta.aligned_changes(self.scope).items():
            if semiring.is_zero(value):
                table.pop(cell, None)
            else:
                table[cell] = value
        return Factor(self.scope, table, name=name or self.name)

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #
    def value(self, assignment: Assignment, semiring: Semiring) -> Any:
        """Evaluate the factor on ``assignment`` (a dict of variable values).

        Variables outside the scope are ignored; missing scope variables
        raise.  Tuples not in the table evaluate to ``semiring.zero``.
        """
        try:
            key = tuple(assignment[v] for v in self.scope)
        except KeyError as exc:
            raise FactorError(f"assignment {assignment} misses scope variable {exc}") from exc
        return self.table.get(key, semiring.zero)

    def value_of_tuple(self, key: ValueTuple, semiring: Semiring) -> Any:
        """Evaluate the factor on a value tuple aligned with the scope."""
        return self.table.get(tuple(key), semiring.zero)

    def assignments(self) -> Iterator[Dict[str, Any]]:
        """Iterate the listed tuples as ``{variable: value}`` dicts."""
        for key in self.table:
            yield dict(zip(self.scope, key))

    # ------------------------------------------------------------------ #
    # zero handling
    # ------------------------------------------------------------------ #
    def pruned(self, semiring: Semiring) -> "Factor":
        """Return a copy with explicit zero entries removed."""
        table = {k: v for k, v in self.table.items() if not semiring.is_zero(v)}
        return Factor(self.scope, table, name=self.name)

    def is_identically_zero(self, semiring: Semiring) -> bool:
        """Return ``True`` if every listed entry is zero (or none is listed)."""
        return all(semiring.is_zero(v) for v in self.table.values())

    # ------------------------------------------------------------------ #
    # conditioning (Section 4.1 of the paper)
    # ------------------------------------------------------------------ #
    def condition(self, partial: Assignment, semiring: Semiring) -> "Factor":
        """Return the conditional factor ``ψ_S(· | y_W)``.

        Entries inconsistent with the partial assignment become zero (i.e.
        are dropped); the scope is unchanged, matching Definition in
        Section 4.1 of the paper.
        """
        relevant = {v: partial[v] for v in self.scope if v in partial}
        if not relevant:
            return self.copy()
        positions = [(i, relevant[v]) for i, v in enumerate(self.scope) if v in relevant]
        table = {
            key: value
            for key, value in self.table.items()
            if all(key[i] == want for i, want in positions)
            and not semiring.is_zero(value)
        }
        return Factor(self.scope, table, name=self.name + "|cond")

    def restrict(self, partial: Assignment, semiring: Semiring) -> "Factor":
        """Condition on ``partial`` and drop the conditioned variables.

        Unlike :meth:`condition`, the returned factor's scope no longer
        contains the fixed variables.  This is the operation InsideOut and
        the brute-force evaluator use to "plug in" values.
        """
        fixed = {v: partial[v] for v in self.scope if v in partial}
        if not fixed:
            return self.copy()
        keep_idx = [i for i, v in enumerate(self.scope) if v not in fixed]
        check_idx = [(i, fixed[v]) for i, v in enumerate(self.scope) if v in fixed]
        new_scope = tuple(self.scope[i] for i in keep_idx)
        table: Dict[ValueTuple, Any] = {}
        for key, value in self.table.items():
            if semiring.is_zero(value):
                continue
            if all(key[i] == want for i, want in check_idx):
                table[tuple(key[i] for i in keep_idx)] = value
        return Factor(new_scope, table, name=self.name + "|restr")

    # ------------------------------------------------------------------ #
    # projections
    # ------------------------------------------------------------------ #
    def indicator_projection(self, target: Iterable[str], semiring: Semiring) -> "Factor":
        """The indicator projection ``ψ_{S/T}`` onto ``T`` (Definition 4.2).

        ``ψ_{S/T}(x_T) = 1`` iff some extension of ``x_T`` to ``S`` has a
        non-zero value, else ``0``.  The result's scope is ``S ∩ T`` in the
        order of this factor's scope.
        """
        target_set = set(target)
        keep_idx = [i for i, v in enumerate(self.scope) if v in target_set]
        if not keep_idx:
            raise FactorError(
                f"indicator projection of {self.name} onto a disjoint set {sorted(target_set)}"
            )
        new_scope = tuple(self.scope[i] for i in keep_idx)
        table: Dict[ValueTuple, Any] = {}
        for key, value in self.table.items():
            if semiring.is_zero(value):
                continue
            table[tuple(key[i] for i in keep_idx)] = semiring.one
        return Factor(new_scope, table, name=self.name + f"/{{{','.join(new_scope)}}}")

    def support_projection(self, target: Iterable[str]) -> set:
        """Return the set of projected tuples (no values) onto ``target``."""
        target_set = set(target)
        keep_idx = [i for i, v in enumerate(self.scope) if v in target_set]
        return {tuple(key[i] for i in keep_idx) for key in self.table}

    # ------------------------------------------------------------------ #
    # marginalisation
    # ------------------------------------------------------------------ #
    def aggregate_marginalize(
        self, variable: str, combine: Callable[[Any, Any], Any], semiring: Semiring
    ) -> "Factor":
        """Eliminate ``variable`` with a semiring aggregate ``⊕``.

        Because unlisted tuples are zero (the identity of any semiring
        aggregate sharing the query's ``0``), the aggregate only runs over
        listed tuples.
        """
        if variable not in self.scope:
            raise FactorError(f"{variable} not in scope {self.scope}")
        keep_idx = [i for i, v in enumerate(self.scope) if v != variable]
        new_scope = tuple(self.scope[i] for i in keep_idx)
        table: Dict[ValueTuple, Any] = {}
        for key, value in self.table.items():
            if semiring.is_zero(value):
                continue
            reduced = tuple(key[i] for i in keep_idx)
            if reduced in table:
                table[reduced] = combine(table[reduced], value)
            else:
                table[reduced] = value
        table = {k: v for k, v in table.items() if not semiring.is_zero(v)}
        return Factor(new_scope, table, name=self.name + f"-agg({variable})")

    def product_marginalize(
        self, variable: str, domain_size: int, semiring: Semiring
    ) -> "Factor":
        """Eliminate ``variable`` with the product aggregate ``⊗``.

        ``ψ'_{S-{k}}(x_{S-{k}}) = ⊗_{x_k ∈ Dom(X_k)} ψ_S(x_S)``.  Because the
        product ranges over the *whole* domain, any group that does not list
        all ``domain_size`` values of ``variable`` is annihilated by an
        implicit zero and is dropped from the result.
        """
        if variable not in self.scope:
            raise FactorError(f"{variable} not in scope {self.scope}")
        if domain_size <= 0:
            raise FactorError(f"domain size must be positive, got {domain_size}")
        keep_idx = [i for i, v in enumerate(self.scope) if v != variable]
        new_scope = tuple(self.scope[i] for i in keep_idx)
        partial: Dict[ValueTuple, Any] = {}
        counts: Dict[ValueTuple, int] = {}
        for key, value in self.table.items():
            if semiring.is_zero(value):
                continue
            reduced = tuple(key[i] for i in keep_idx)
            if reduced in partial:
                partial[reduced] = semiring.mul(partial[reduced], value)
                counts[reduced] += 1
            else:
                partial[reduced] = value
                counts[reduced] = 1
        table = {
            k: v
            for k, v in partial.items()
            if counts[k] == domain_size and not semiring.is_zero(v)
        }
        return Factor(new_scope, table, name=self.name + f"-prod({variable})")

    # ------------------------------------------------------------------ #
    # pointwise operations
    # ------------------------------------------------------------------ #
    def power(self, exponent: int, semiring: Semiring) -> "Factor":
        """Raise all listed values to ``exponent`` under ``⊗`` (pointwise)."""
        table = {k: semiring.power(v, exponent) for k, v in self.table.items()}
        table = {k: v for k, v in table.items() if not semiring.is_zero(v)}
        return Factor(self.scope, table, name=self.name + f"^{exponent}")

    def map_values(self, fn: Callable[[Any], Any], name: str | None = None) -> "Factor":
        """Apply ``fn`` to every listed value (scope preserved)."""
        return Factor(self.scope, {k: fn(v) for k, v in self.table.items()}, name=name or self.name)

    def has_idempotent_range(self, semiring: Semiring) -> bool:
        """``True`` iff every listed value is ⊗-idempotent (Definition 5.2)."""
        return all(semiring.is_mul_idempotent(v) for v in self.table.values())

    # ------------------------------------------------------------------ #
    # binary operations
    # ------------------------------------------------------------------ #
    def _joined_items(
        self, other: "Factor", semiring: Semiring
    ) -> Iterator[Tuple[ValueTuple, Any]]:
        """Hash-join with ``other``: yield ``(joined_tuple, product)`` pairs.

        The joined tuple follows the scope ``self.scope + other_only``;
        zero inputs and zero products are skipped.  Shared by
        :meth:`multiply` and :meth:`multiply_marginalize` so the two paths
        cannot diverge.
        """
        shared = [v for v in self.scope if v in other.scope]
        other_only = [v for v in other.scope if v not in self.scope]
        other_shared_idx = [other.scope.index(v) for v in shared]
        other_rest_idx = [other.scope.index(v) for v in other_only]
        self_shared_idx = [self.scope.index(v) for v in shared]

        buckets: Dict[ValueTuple, list] = {}
        for key, value in other.table.items():
            if semiring.is_zero(value):
                continue
            sig = tuple(key[i] for i in other_shared_idx)
            buckets.setdefault(sig, []).append((tuple(key[i] for i in other_rest_idx), value))

        for key, value in self.table.items():
            if semiring.is_zero(value):
                continue
            sig = tuple(key[i] for i in self_shared_idx)
            for rest, other_value in buckets.get(sig, ()):
                prod = semiring.mul(value, other_value)
                if semiring.is_zero(prod):
                    continue
                yield key + rest, prod

    def multiply(self, other: "Factor", semiring: Semiring) -> "Factor":
        """Pointwise product ``ψ_S ⊗ ψ_T`` over scope ``S ∪ T`` (a join).

        This is a straightforward hash join on the shared variables; the
        engine's OutsideIn join is used for the multiway case, this method is
        mostly a convenience for tests, baselines and small factors.
        """
        other_only = [v for v in other.scope if v not in self.scope]
        new_scope = self.scope + tuple(other_only)
        table: Dict[ValueTuple, Any] = dict(self._joined_items(other, semiring))
        return Factor(new_scope, table, name=f"({self.name}*{other.name})")

    def multiply_marginalize(
        self,
        other: "Factor",
        variable: str,
        combine: Callable[[Any, Any], Any],
        semiring: Semiring,
    ) -> Tuple["Factor", int]:
        """Fused ``(self ⊗ other)`` then ``⊕``-eliminate ``variable``.

        Joins like :meth:`multiply` but aggregates ``variable`` out of each
        joined tuple on the fly instead of materialising the full product
        first.  Returns ``(factor, joined_count)`` where ``joined_count`` is
        the number of non-zero joined tuples the unfused product would have
        listed — callers tracking intermediate sizes keep their historical
        accounting without paying for the intermediate.
        """
        other_only = [v for v in other.scope if v not in self.scope]
        product_scope = self.scope + tuple(other_only)
        if variable not in product_scope:
            raise FactorError(f"{variable} not in joined scope {product_scope}")
        keep_idx = [i for i, v in enumerate(product_scope) if v != variable]
        new_scope = tuple(product_scope[i] for i in keep_idx)

        joined = 0
        table: Dict[ValueTuple, Any] = {}
        for full, prod in self._joined_items(other, semiring):
            joined += 1
            reduced = tuple(full[i] for i in keep_idx)
            if reduced in table:
                table[reduced] = combine(table[reduced], prod)
            else:
                table[reduced] = prod
        table = {k: v for k, v in table.items() if not semiring.is_zero(v)}
        return (
            Factor(new_scope, table, name=f"({self.name}*{other.name})-agg({variable})"),
            joined,
        )

    def normalize_scope(self, order: Sequence[str]) -> "Factor":
        """Return an equivalent factor whose scope follows ``order``.

        Variables in the scope are re-ordered according to their position in
        ``order``; variables not listed in ``order`` keep their relative
        order at the end.
        """
        position = {v: i for i, v in enumerate(order)}
        new_scope = tuple(sorted(self.scope, key=lambda v: (position.get(v, len(order)), v)))
        if new_scope == self.scope:
            return self.copy()
        perm = [self.scope.index(v) for v in new_scope]
        table = {tuple(key[i] for i in perm): value for key, value in self.table.items()}
        return Factor(new_scope, table, name=self.name)

    # ------------------------------------------------------------------ #
    # comparisons (used heavily in tests)
    # ------------------------------------------------------------------ #
    def equals(self, other: "Factor", semiring: Semiring) -> bool:
        """Semantic equality: same function over the union of listed tuples."""
        if set(self.scope) != set(other.scope):
            return False
        other_aligned = other.normalize_scope(self.scope)
        keys = set(self.table) | set(other_aligned.table)
        for key in keys:
            a = self.table.get(key, semiring.zero)
            b = other_aligned.table.get(key, semiring.zero)
            if not semiring.values_equal(a, b):
                return False
        return True

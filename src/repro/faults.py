"""Deterministic fault injection for the serving and execution tiers.

The failure paths of this engine — replica crash/restart, wire timeouts,
dead process-pool workers, shared-memory attach races, snapshot spill I/O
— were each covered by one bespoke monkeypatch before this module.  A
:class:`FaultPlan` replaces them with a *seeded*, named-site harness: the
hot paths call :func:`fire`/:func:`maybe_raise` at fixed **fault sites**,
and an installed plan decides (reproducibly, from its seed and per-site
call counters) whether that particular call fails and how.

Fault sites
-----------

=================  ====================================================
``replica.kill``   the parent terminates the replica process just
                   before an RPC (detected as a pipe error / timeout)
``wire.send``      a frontend→replica message is dropped, delayed, or
                   replaced by garbage bytes
``wire.recv``      a replica→frontend reply is dropped (surfaces as an
                   RPC timeout), delayed, or corrupted
``worker.kill``    a process-pool worker exits mid-step (the promoted
                   form of the old ``_TEST_CRASH_NODES`` hook)
``shm.attach``     attaching a shared-memory segment raises ``OSError``
``step.kernel``    a step-DAG kernel raises :class:`InjectedFault`
``snapshot.io``    snapshot spill/restore I/O raises ``OSError``
=================  ====================================================

Plans are cheap to consult (one dict lookup when no plan is installed)
and thread-safe.  Two triggering modes compose:

* ``schedule={site: {nth_call: action}}`` — deterministic: exactly the
  n-th call at the site (1-based) fails with ``action``.
* ``rates={site: probability}`` or ``{site: (probability, actions)}`` —
  a seeded draw per call; the action is chosen from the site's action
  set with the same RNG, so a given seed yields one exact fault script.

Replica child processes do not inherit the parent's live plan object;
:meth:`FaultPlan.child_config` produces a picklable description that the
replica entry point re-installs (with a per-replica seed offset, so the
fleet's replicas fail independently but reproducibly).

Everything here is observable: per-site call and injection counters via
:meth:`FaultPlan.stats`, the total via :attr:`FaultPlan.total_injected`
— which the serving tier surfaces as ``faults_injected``.
"""

from __future__ import annotations

import contextlib
import random
import threading
import time
from typing import Any, Dict, Iterator, Mapping, Optional, Tuple

SITE_REPLICA_KILL = "replica.kill"
SITE_WIRE_SEND = "wire.send"
SITE_WIRE_RECV = "wire.recv"
SITE_WORKER_KILL = "worker.kill"
SITE_SHM_ATTACH = "shm.attach"
SITE_STEP_KERNEL = "step.kernel"
SITE_SNAPSHOT_IO = "snapshot.io"

SITES = (
    SITE_REPLICA_KILL,
    SITE_WIRE_SEND,
    SITE_WIRE_RECV,
    SITE_WORKER_KILL,
    SITE_SHM_ATTACH,
    SITE_STEP_KERNEL,
    SITE_SNAPSHOT_IO,
)

ACTION_KILL = "kill"
ACTION_DROP = "drop"
ACTION_DELAY = "delay"
ACTION_CORRUPT = "corrupt"
ACTION_ERROR = "error"

#: Default action set drawn from when a rate is given as a bare probability.
_DEFAULT_ACTIONS: Dict[str, Tuple[str, ...]] = {
    SITE_REPLICA_KILL: (ACTION_KILL,),
    SITE_WIRE_SEND: (ACTION_DROP, ACTION_DELAY, ACTION_CORRUPT),
    SITE_WIRE_RECV: (ACTION_DROP, ACTION_DELAY, ACTION_CORRUPT),
    SITE_WORKER_KILL: (ACTION_KILL,),
    SITE_SHM_ATTACH: (ACTION_ERROR,),
    SITE_STEP_KERNEL: (ACTION_ERROR,),
    SITE_SNAPSHOT_IO: (ACTION_ERROR,),
}


class InjectedFault(RuntimeError):
    """An error raised by an injected ``step.kernel`` fault.

    Deliberately an ordinary ``RuntimeError`` subclass: the hardening under
    test must convert it into the *typed* serving errors
    (:class:`~repro.serve.api.PlanFailure` et al.) exactly as it would any
    real kernel bug.
    """


class FaultPlan:
    """A seeded script of which calls at which fault sites fail, and how.

    Parameters
    ----------
    seed:
        Seeds the per-plan RNG; the same seed and call sequence produce
        the same fault script.
    rates:
        ``{site: probability}`` or ``{site: (probability, actions)}`` —
        each call at the site fails with the given probability.
    schedule:
        ``{site: {nth_call: action}}`` — the n-th call at the site
        (1-based) fails with exactly ``action``.  Takes precedence over
        ``rates`` (the rate draw is skipped for scheduled calls, keeping
        the rate stream aligned).
    delay:
        Seconds a ``"delay"`` action sleeps.
    """

    def __init__(
        self,
        seed: int = 0,
        rates: Optional[Mapping[str, Any]] = None,
        schedule: Optional[Mapping[str, Mapping[int, str]]] = None,
        delay: float = 0.02,
    ) -> None:
        self.seed = seed
        self.delay = delay
        self._rates: Dict[str, Tuple[float, Tuple[str, ...]]] = {}
        for site, spec in dict(rates or {}).items():
            self._validate_site(site)
            if isinstance(spec, (tuple, list)):
                probability, actions = spec
                actions = tuple(actions)
            else:
                probability = float(spec)
                actions = _DEFAULT_ACTIONS.get(site, (ACTION_ERROR,))
            self._rates[site] = (float(probability), actions)
        self._schedule: Dict[str, Dict[int, str]] = {}
        for site, calls in dict(schedule or {}).items():
            self._validate_site(site)
            self._schedule[site] = {int(n): str(action) for n, action in dict(calls).items()}
        self._lock = threading.Lock()
        self._rng = random.Random(seed)
        self.calls: Dict[str, int] = {}
        self.injected: Dict[str, int] = {}

    @staticmethod
    def _validate_site(site: str) -> None:
        if site not in SITES:
            raise ValueError(f"unknown fault site {site!r}; known sites: {SITES}")

    # ------------------------------------------------------------------ #
    def draw(self, site: str) -> Optional[str]:
        """The action to inject for this call at ``site``, or ``None``.

        Every call is counted whether or not it faults, so schedules keyed
        by call number stay deterministic under retries.
        """
        with self._lock:
            count = self.calls.get(site, 0) + 1
            self.calls[site] = count
            action = self._schedule.get(site, {}).get(count)
            if action is None:
                spec = self._rates.get(site)
                if spec is not None:
                    probability, actions = spec
                    if self._rng.random() < probability:
                        action = actions[self._rng.randrange(len(actions))]
            if action is not None:
                self.injected[site] = self.injected.get(site, 0) + 1
            return action

    def sleep(self) -> None:
        """Sleep the plan's delay (the body of a ``"delay"`` action)."""
        time.sleep(self.delay)

    @property
    def total_injected(self) -> int:
        with self._lock:
            return sum(self.injected.values())

    def stats(self) -> Dict[str, Any]:
        """Per-site call/injection counters (snapshot)."""
        with self._lock:
            return {
                "calls": dict(self.calls),
                "injected": dict(self.injected),
                "total_injected": sum(self.injected.values()),
            }

    # ------------------------------------------------------------------ #
    def child_config(self, child_seed_offset: int = 0) -> Dict[str, Any]:
        """A picklable description for re-installing this plan in a child.

        Child counters start fresh (the child has its own call stream) and
        the seed is offset so distinct replicas draw independent — but
        reproducible — fault scripts.
        """
        return {
            "seed": self.seed + 7919 * (child_seed_offset + 1),
            "rates": {site: (p, list(a)) for site, (p, a) in self._rates.items()},
            "schedule": {site: dict(calls) for site, calls in self._schedule.items()},
            "delay": self.delay,
        }

    @classmethod
    def from_config(cls, config: Optional[Mapping[str, Any]]) -> Optional["FaultPlan"]:
        """Rebuild a plan from :meth:`child_config` output (``None`` passes through)."""
        if not config:
            return None
        return cls(
            seed=config.get("seed", 0),
            rates=config.get("rates"),
            schedule=config.get("schedule"),
            delay=config.get("delay", 0.02),
        )


# ---------------------------------------------------------------------- #
# the process-global installation point
# ---------------------------------------------------------------------- #
_PLAN: Optional[FaultPlan] = None


def install_plan(plan: Optional[FaultPlan]) -> None:
    """Install ``plan`` process-wide (``None`` clears it)."""
    global _PLAN
    _PLAN = plan


def clear_plan() -> None:
    install_plan(None)


def current_plan() -> Optional[FaultPlan]:
    return _PLAN


@contextlib.contextmanager
def injected_faults(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` for the duration of a ``with`` block (test helper)."""
    previous = _PLAN
    install_plan(plan)
    try:
        yield plan
    finally:
        install_plan(previous)


def fire(site: str) -> Optional[str]:
    """The injected action for this call at ``site`` (fast ``None`` when clear).

    Callers that distinguish actions (the wire hooks) use this directly;
    raise-only sites use :func:`maybe_raise`.
    """
    plan = _PLAN
    if plan is None:
        return None
    return plan.draw(site)


def maybe_raise(site: str, exc_type: type = InjectedFault) -> None:
    """Raise ``exc_type`` if the installed plan injects a fault at ``site``."""
    plan = _PLAN
    if plan is None:
        return
    action = plan.draw(site)
    if action is not None:
        raise exc_type(f"injected fault at {site} (action={action})")

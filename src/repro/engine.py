"""The top-level facade: one configured object, every way to run a query.

:class:`Engine` bundles the pieces a user would otherwise wire by hand —
a private :class:`~repro.planner.cache.PlanCache`, an in-process
:class:`~repro.serve.server.PlanServer` with warm shared tries, and (on
demand) a replicated :class:`~repro.serve.frontend.Frontend` — behind the
serving contract of :mod:`repro.serve.api`::

    from repro import Engine

    engine = Engine(workers=2)
    result = engine.query(q)                   # ServeResult, warm caches
    results = engine.batch([q1, q2, q2])       # coalesced batch
    with engine.serve(replicas=4) as tier:     # the horizontal tier
        results = tier.serve_batch(requests)

Configuration is one frozen :class:`EngineConfig` value (or keyword
overrides); the same config drives the in-process path and the replica
fleet, so moving a workload up the scaling ladder changes no call sites.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from typing import Any, List, Optional, Sequence, Union

from repro.core.query import FAQQuery
from repro.planner import Plan, PlanCache, plan
from repro.serve.api import ServeRequest, ServeResult
from repro.serve.frontend import Frontend
from repro.serve.server import PlanServer


@dataclass(frozen=True)
class EngineConfig:
    """Everything an :class:`Engine` needs to know, as one frozen value.

    Attributes
    ----------
    workers:
        Per-query step-DAG parallelism — the unified ``workers=`` meaning
        shared with every other entry point (``None``/1 = serial per
        query, ``"auto"`` = capped CPU count).
    workers_mode:
        ``"thread"`` (default) or ``"process"`` — whether per-query
        parallelism runs on a thread pool or on shared-memory worker
        processes (the sparse kernels escape the GIL; see
        :mod:`repro.exec.procpool`).
    pool_size:
        In-process concurrency of the engine's :class:`PlanServer`
        (defaults to the CPU count).
    replicas:
        Default fleet size for :meth:`Engine.serve` (CPU count when
        ``None``).
    coalesce:
        Default for content-hash coalescing of value-equal in-flight
        requests.
    share_tries:
        Keep warm per-query trie stores across repeated executions.
    plan_cache_size:
        Capacity of the engine's private plan cache.
    start_method:
        ``multiprocessing`` start method for replica fleets (platform
        default when ``None``).
    max_pending / tenant_limit / health_interval:
        Admission-control and health-loop settings forwarded to
        :class:`~repro.serve.frontend.Frontend`.
    """

    workers: Optional[int | str] = None
    workers_mode: str = "thread"
    pool_size: Optional[int] = None
    replicas: Optional[int] = None
    coalesce: bool = True
    share_tries: bool = True
    plan_cache_size: int = 1024
    start_method: Optional[str] = None
    max_pending: int = 1024
    tenant_limit: Optional[int] = None
    health_interval: Optional[float] = 1.0


class Engine:
    """A configured FAQ engine: plan, execute, batch and serve.

    Construct with an :class:`EngineConfig`, keyword overrides, or both
    (overrides win)::

        Engine()                               # defaults
        Engine(EngineConfig(workers=2))
        Engine(workers=2, plan_cache_size=256)

    The engine owns a private plan cache shared by every path through it,
    and lazily starts one in-process :class:`PlanServer` for
    :meth:`query`/:meth:`batch`/:meth:`submit`.  :meth:`serve` starts a
    replicated tier; the returned :class:`Frontend` is independently
    context-managed.  The fleet parent publishes its warm read-only caches
    (the engine's plan cache and the process-wide ρ* memo) to a
    shared-memory store every replica adopts at startup, so cold replicas
    begin fleet-warm; entries created later are still per-replica
    (re-derived from the same deterministic planner).
    """

    def __init__(self, config: Optional[EngineConfig] = None, **overrides: Any) -> None:
        base = config if config is not None else EngineConfig()
        self.config = replace(base, **overrides) if overrides else base
        self.cache = PlanCache(maxsize=self.config.plan_cache_size)
        self._server: Optional[PlanServer] = None
        self._lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------ #
    # the in-process path
    # ------------------------------------------------------------------ #
    @property
    def server(self) -> PlanServer:
        """The lazily started in-process :class:`PlanServer`."""
        with self._lock:
            if self._closed:
                raise RuntimeError("Engine is closed")
            if self._server is None:
                self._server = PlanServer(
                    workers=self.config.workers,
                    workers_mode=self.config.workers_mode,
                    pool_size=self.config.pool_size,
                    cache=self.cache,
                    coalesce=self.config.coalesce,
                    share_tries=self.config.share_tries,
                )
            return self._server

    def query(
        self,
        query: Union[FAQQuery, ServeRequest],
        *,
        output_mode: str = "listing",
        **options: Any,
    ) -> ServeResult:
        """Plan and execute one query synchronously, caches warm.

        ``options`` are the planner overrides a :class:`ServeRequest`
        accepts (``strategy=``/``backend=``/``ordering=``/``use_cache=``).
        Repeated calls reuse the engine's plan cache, digest-addressed
        plans, canonical query pinning and shared tries.
        """
        request = self._as_request(query, output_mode=output_mode, options=options)
        return self.server.execute_request(request)

    def submit(self, query: Union[FAQQuery, ServeRequest], **options: Any):
        """Async-friendly submit; returns ``Future[ServeResult]``."""
        return self.server.submit(self._as_request(query, options=options))

    def batch(
        self,
        queries: Sequence[Union[FAQQuery, ServeRequest]],
        *,
        coalesce: bool = True,
    ) -> List[ServeResult]:
        """Execute a batch concurrently; results come back in input order.

        Value-equal in-flight requests coalesce onto one execution
        (``coalesce=False`` opts the whole batch out).
        """
        requests = [self._as_request(q) for q in queries]
        return self.server.execute_batch(requests, coalesce=coalesce)

    # ------------------------------------------------------------------ #
    # the replicated path
    # ------------------------------------------------------------------ #
    def serve(self, replicas: Optional[int] = None, **overrides: Any) -> Frontend:
        """Start a replicated serving tier configured like this engine.

        Returns a :class:`~repro.serve.frontend.Frontend` (use it as a
        context manager).  ``overrides`` replace individual frontend
        arguments (``max_pending=``, ``tenant_limit=``, ...).
        """
        kwargs = {
            "workers": self.config.workers,
            "workers_mode": self.config.workers_mode,
            "start_method": self.config.start_method,
            "max_pending": self.config.max_pending,
            "tenant_limit": self.config.tenant_limit,
            "health_interval": self.config.health_interval,
            "coalesce": self.config.coalesce,
            # Cold replicas adopt the engine's warm plan cache (plus the
            # process-wide rho* memo) through the shared-memory store.
            "plan_cache": self.cache,
        }
        kwargs.update(overrides)
        return Frontend(
            replicas if replicas is not None else self.config.replicas, **kwargs
        )

    # ------------------------------------------------------------------ #
    # planner access
    # ------------------------------------------------------------------ #
    def plan(self, query: FAQQuery, **options: Any) -> Plan:
        """The plan the engine would run for ``query`` (uses its cache)."""
        return plan(query, cache=self.cache, **options)

    def explain(self, query: FAQQuery, **options: Any) -> str:
        """:meth:`~repro.planner.plan.Plan.explain` for the chosen plan."""
        return self.plan(query, **options).explain()

    # ------------------------------------------------------------------ #
    # observability + lifecycle
    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        """The in-process server's counters (empty-ish before first use)."""
        with self._lock:
            server = self._server
        if server is None:
            return {"submitted": 0, "plan_cache_hits": self.cache.hits,
                    "plan_cache_misses": self.cache.misses}
        return server.stats()

    def close(self) -> None:
        """Shut the in-process server down (idempotent)."""
        with self._lock:
            self._closed = True
            server, self._server = self._server, None
        if server is not None:
            server.shutdown(wait=True)

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    def _as_request(
        self,
        query: Union[FAQQuery, ServeRequest],
        *,
        output_mode: str = "listing",
        options: Optional[dict] = None,
    ) -> ServeRequest:
        if isinstance(query, ServeRequest):
            return query
        return ServeRequest(
            query=query,
            output_mode=output_mode,
            coalesce=self.config.coalesce,
            options=tuple((options or {}).items()),
        )

"""Application layers: the paper's example problems expressed as FAQ queries.

Each module covers one family of Table 1 rows / Appendix A examples:

* :mod:`~repro.solvers.joins` — natural joins and subgraph/homomorphism
  counting (Joins row, triangle counting of Example A.8),
* :mod:`~repro.solvers.logic` — BCQ, CQ, #CQ, QCQ and #QCQ (rows 1-3),
* :mod:`~repro.solvers.csp` — constraint satisfaction and graph colouring,
* :mod:`~repro.solvers.sat` — SAT / #SAT, Davis–Putnam-style InsideOut over
  clause (box-factor) representations and β-acyclic tractability (Section 8),
* :mod:`~repro.solvers.pgm` — marginal / MAP inference wrappers comparing
  InsideOut with the junction-tree and brute-force baselines (rows 5-6),
* :mod:`~repro.solvers.matrix` — matrix-chain multiplication and the DFT
  (rows 7-8).
"""

from repro.solvers import csp, joins, logic, matrix, pgm, sat

__all__ = ["csp", "joins", "logic", "matrix", "pgm", "sat"]

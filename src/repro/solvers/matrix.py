"""Matrix chain multiplication and the DFT as FAQ queries (Table 1, rows 7-8).

* **MCM** (Example 1.1): the product ``A_1 ... A_n`` is the FAQ-SS query
  ``ϕ(x_1, x_{n+1}) = Σ_{x_2..x_n} ∏_i ψ_{i,i+1}(x_i, x_{i+1})`` over the
  sum-product semiring.  Every ordering of the bound variables is
  equivalent, and the cost of an ordering is exactly the cost of the
  corresponding parenthesisation — the classic dynamic program is an
  ordering-selection algorithm in disguise (Appendix E of the paper).
* **DFT** (Aji–McEliece, re-derived in the paper): for a vector of length
  ``N = p^m`` indexed by base-``p`` digits ``y_0..y_{m-1}``, the transform
  ``ϕ(x_0..x_{m-1}) = Σ_y b_y ∏_{j+k<m} exp(2πi x_j y_k / p^{m-j-k})`` is an
  FAQ-SS query whose InsideOut evaluation along the natural ordering does
  ``O(N log N)`` work — the FFT — versus the naive ``O(N²)`` summation.
"""

from __future__ import annotations

import cmath
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.query import FAQQuery, QueryError, Variable
from repro.factors.builders import factor_from_matrix
from repro.factors.factor import Factor
from repro.planner import STRATEGY_INSIDEOUT, execute
from repro.semiring.aggregates import SemiringAggregate
from repro.semiring.base import Semiring
from repro.semiring.standard import SUM_PRODUCT

COMPLEX_SUM_PRODUCT = Semiring(
    name="complex-sum-product",
    add=lambda a, b: a + b,
    mul=lambda a, b: a * b,
    zero=0j,
    one=1 + 0j,
)
"""The sum-product semiring over the complex numbers (used by the DFT)."""


# ---------------------------------------------------------------------- #
# matrix chain multiplication
# ---------------------------------------------------------------------- #
def matrix_chain_query(matrices: Sequence[np.ndarray]) -> FAQQuery:
    """The FAQ-SS query of Example 1.1 for a chain of matrices."""
    if not matrices:
        raise QueryError("matrix chain must contain at least one matrix")
    arrays = [np.asarray(m) for m in matrices]
    for left, right in zip(arrays, arrays[1:]):
        if left.shape[1] != right.shape[0]:
            raise QueryError(
                f"dimension mismatch in matrix chain: {left.shape} x {right.shape}"
            )
    n = len(arrays)
    names = [f"x{i}" for i in range(1, n + 2)]
    dims = [arrays[0].shape[0]] + [a.shape[1] for a in arrays]
    variables = [Variable(name, tuple(range(dim))) for name, dim in zip(names, dims)]
    factors = [
        factor_from_matrix(names[i], names[i + 1], arrays[i], SUM_PRODUCT, name=f"A{i + 1}")
        for i in range(n)
    ]
    free = [names[0], names[-1]]
    ordered_variables = [variables[0], variables[-1]] + variables[1:-1]
    aggregates = {name: SemiringAggregate.sum() for name in names[1:-1]}
    return FAQQuery(
        variables=ordered_variables,
        free=free,
        aggregates=aggregates,
        factors=factors,
        semiring=SUM_PRODUCT,
        name="mcm",
    )


def matrix_chain_insideout(
    matrices: Sequence[np.ndarray],
    ordering: Sequence[str] | str | None = None,
    backend: str = "auto",
    workers: int | None = None,
) -> np.ndarray:
    """Multiply a matrix chain through the FAQ encoding and InsideOut.

    ``ordering`` defaults to the ordering derived from the classic dynamic
    program (see :func:`mcm_dp_ordering`), which is optimal and is pinned
    through the planner as an explicit override; pass ``"plan"`` to let the
    cost-based planner search instead.  The workload is naturally dense, so
    the factor ``backend`` defaults to ``"auto"`` (which the cost heuristic
    resolves to the ndarray representation for dense input matrices); pass
    ``"sparse"`` for the pure listing path.
    """
    arrays = [np.asarray(m, dtype=float) for m in matrices]
    if len(arrays) == 1:
        return arrays[0].copy()
    query = matrix_chain_query(arrays)
    if ordering is None:
        dims = [arrays[0].shape[0]] + [a.shape[1] for a in arrays]
        ordering = mcm_dp_ordering(dims)
    result = execute(
        query, ordering=ordering, backend=backend, strategy=STRATEGY_INSIDEOUT, workers=workers
    )
    rows, cols = arrays[0].shape[0], arrays[-1].shape[1]
    output = np.zeros((rows, cols), dtype=float)
    for (i, j), value in result.factor.table.items():
        output[i, j] = value
    return output


def mcm_dp_cost(dims: Sequence[int]) -> Tuple[int, List[List[int]]]:
    """The classic MCM dynamic program: optimal scalar-multiplication count.

    ``dims`` is the dimension vector ``p_1, ..., p_{n+1}`` (matrix ``A_i`` is
    ``p_i × p_{i+1}``).  Returns the optimal cost and the split table used to
    reconstruct the parenthesisation.
    """
    n = len(dims) - 1
    if n <= 0:
        raise QueryError("need at least one matrix")
    cost = [[0] * (n + 1) for _ in range(n + 1)]
    split = [[0] * (n + 1) for _ in range(n + 1)]
    for length in range(2, n + 1):
        for i in range(1, n - length + 2):
            j = i + length - 1
            cost[i][j] = None
            for k in range(i, j):
                candidate = cost[i][k] + cost[k + 1][j] + dims[i - 1] * dims[k] * dims[j]
                if cost[i][j] is None or candidate < cost[i][j]:
                    cost[i][j] = candidate
                    split[i][j] = k
    return cost[1][n], split


def mcm_dp_ordering(dims: Sequence[int]) -> List[str]:
    """Translate the optimal parenthesisation into a variable ordering.

    Parenthesising ``(A_i..A_k)(A_{k+1}..A_j)`` corresponds to eliminating the
    shared index ``x_{k+1}`` *last* among the indices internal to ``i..j``;
    recursing on the split table therefore yields the ordering (innermost
    eliminations at the back) that lets InsideOut reproduce the DP cost.
    """
    n = len(dims) - 1
    names = [f"x{i}" for i in range(1, n + 2)]
    if n == 1:
        return [names[0], names[-1]]
    _, split = mcm_dp_cost(dims)

    elimination: List[str] = []  # eliminated first .. eliminated last

    def recurse(i: int, j: int) -> None:
        if i >= j:
            return
        k = split[i][j]
        recurse(i, k)
        recurse(k + 1, j)
        elimination.append(f"x{k + 1}")

    recurse(1, n)
    # The variable ordering lists free variables first and then bound
    # variables such that elimination proceeds from the back.
    bound_in_order = list(reversed(elimination))
    return [names[0], names[-1]] + bound_in_order


def mcm_naive_cost(dims: Sequence[int]) -> int:
    """Cost of the left-to-right parenthesisation (the naive baseline)."""
    total = 0
    rows = dims[0]
    for i in range(1, len(dims) - 1):
        total += rows * dims[i] * dims[i + 1]
    return total


# ---------------------------------------------------------------------- #
# discrete Fourier transform
# ---------------------------------------------------------------------- #
def _digits(value: int, base: int, length: int) -> Tuple[int, ...]:
    """Base-``base`` digits of ``value``, least-significant first."""
    digits = []
    for _ in range(length):
        digits.append(value % base)
        value //= base
    return tuple(digits)


def dft_query(vector: Sequence[complex], base: int) -> FAQQuery:
    """The FAQ-SS query computing the DFT of a length-``p^m`` vector.

    Following the paper's Table 1 row: output index digits ``x_0..x_{m-1}``
    are free, input index digits ``y_0..y_{m-1}`` are summed, one factor
    holds the input vector ``b_y`` and one twiddle factor
    ``exp(2πi x_j y_k / p^{m-j-k})`` exists for every pair with ``j+k < m``.
    """
    values = list(vector)
    size = len(values)
    if size == 0:
        raise QueryError("cannot transform an empty vector")
    m = 0
    power = 1
    while power < size:
        power *= base
        m += 1
    if power != size or m == 0:
        raise QueryError(f"vector length {size} is not a positive power of base {base}")

    x_names = [f"x{j}" for j in range(m)]
    y_names = [f"y{k}" for k in range(m)]
    digits = tuple(range(base))
    variables = [Variable(name, digits) for name in x_names + y_names]

    input_table: Dict[Tuple[int, ...], complex] = {}
    for index, value in enumerate(values):
        if value != 0:
            input_table[_digits(index, base, m)] = complex(value)
    factors = [Factor(tuple(y_names), input_table, name="b")]

    for j in range(m):
        for k in range(m):
            if j + k >= m:
                continue
            modulus = base ** (m - j - k)
            table = {
                (a, b): cmath.exp(2j * cmath.pi * a * b / modulus)
                for a in range(base)
                for b in range(base)
            }
            factors.append(Factor((f"x{j}", f"y{k}"), table, name=f"w_{j}{k}"))

    aggregates = {name: SemiringAggregate.sum() for name in y_names}
    return FAQQuery(
        variables=variables,
        free=x_names,
        aggregates=aggregates,
        factors=factors,
        semiring=COMPLEX_SUM_PRODUCT,
        name="dft",
    )


def dft_insideout(
    vector: Sequence[complex], base: int = 2, backend: str = "auto",
    workers: int | None = None,
) -> np.ndarray:
    """Compute the DFT through the FAQ encoding (an FFT in disguise).

    The written digit ordering *is* the FFT ordering, so it is pinned
    through the planner as an explicit override.  The input vector and the
    twiddle factors are dense, so the factor ``backend`` defaults to
    ``"auto"`` (resolved to the vectorized ndarray representation); pass
    ``"sparse"`` for the pure listing path.
    """
    values = list(vector)
    size = len(values)
    query = dft_query(values, base)
    result = execute(
        query, ordering=list(query.order), backend=backend, strategy=STRATEGY_INSIDEOUT,
        workers=workers,
    )
    output = np.zeros(size, dtype=complex)
    for key, value in result.factor.table.items():
        index = sum(digit * (base ** position) for position, digit in enumerate(key))
        output[index] = value
    return output


def dft_naive(vector: Sequence[complex]) -> np.ndarray:
    """The textbook ``O(N²)`` DFT summation (the baseline of Table 1)."""
    values = list(vector)
    size = len(values)
    output = np.zeros(size, dtype=complex)
    for x in range(size):
        acc = 0j
        for y in range(size):
            acc += values[y] * cmath.exp(2j * cmath.pi * x * y / size)
        output[x] = acc
    return output

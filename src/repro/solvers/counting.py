"""Further counting problems from Appendix A: permanents and #CSP-style sums.

* :func:`permanent` (Example A.11): the permanent of an ``n × n`` matrix as
  an FAQ-SS instance with one unary factor per row and pairwise
  all-different factors — a #P-hard problem, included to exercise the
  engine on dense high-width queries (the FAQ view gives no asymptotic
  advantage here, matching the paper).
* :func:`count_weighted_homomorphisms`: the weighted homomorphism /
  partition-function form of #CSP (Example A.12 style), counting with
  arbitrary non-negative edge weights.
* :func:`ryser_permanent`: the classical Ryser inclusion–exclusion formula,
  used as the independent reference for the permanent.
"""

from __future__ import annotations

from typing import Dict, Tuple

import networkx as nx
import numpy as np

from repro.core.query import FAQQuery, QueryError, Variable
from repro.factors.factor import Factor
from repro.planner import STRATEGY_INSIDEOUT, execute
from repro.semiring.aggregates import SemiringAggregate
from repro.semiring.standard import SUM_PRODUCT


def permanent_query(matrix: np.ndarray) -> FAQQuery:
    """The FAQ-SS encoding of the permanent (Example A.11).

    Variable ``X_i`` is the column assigned to row ``i``; a unary factor per
    row carries the matrix entries and a pairwise ``≠`` factor per row pair
    enforces that the assignment is a permutation.
    """
    array = np.asarray(matrix, dtype=float)
    if array.ndim != 2 or array.shape[0] != array.shape[1]:
        raise QueryError(f"permanent needs a square matrix, got shape {array.shape}")
    size = array.shape[0]
    names = [f"row{i}" for i in range(size)]
    columns = tuple(range(size))
    factors = []
    for i in range(size):
        entries = {(j,): float(array[i, j]) for j in range(size) if array[i, j] != 0.0}
        factors.append(Factor((names[i],), entries, name=f"row{i}"))
    for i in range(size):
        for j in range(i + 1, size):
            neq = {
                (a, b): 1.0 for a in columns for b in columns if a != b
            }
            factors.append(Factor((names[i], names[j]), neq, name=f"neq{i}{j}"))
    return FAQQuery(
        variables=[Variable(name, columns) for name in names],
        free=[],
        aggregates={name: SemiringAggregate.sum() for name in names},
        factors=factors,
        semiring=SUM_PRODUCT,
        name="permanent",
    )


def permanent(matrix: np.ndarray, workers: int | None = None) -> float:
    """The permanent of a square matrix via InsideOut (exponential in n).

    The permanent's hypergraph is the complete graph of pairwise ``≠``
    factors, so every elimination ordering induces the same (full) union
    sets — an ordering search cannot help (matching the paper: the FAQ view
    gives no asymptotic advantage here).  The written order is therefore
    pinned through the planner, skipping the search entirely.
    """
    query = permanent_query(matrix)
    result = execute(
        query, ordering=list(query.order), strategy=STRATEGY_INSIDEOUT, backend="sparse",
        workers=workers,
    )
    return float(result.scalar_or_zero(SUM_PRODUCT))


def ryser_permanent(matrix: np.ndarray) -> float:
    """Ryser's inclusion–exclusion formula — the reference implementation."""
    array = np.asarray(matrix, dtype=float)
    size = array.shape[0]
    total = 0.0
    for subset_mask in range(1, 1 << size):
        columns = [j for j in range(size) if subset_mask & (1 << j)]
        row_sums = array[:, columns].sum(axis=1)
        product = float(np.prod(row_sums))
        sign = (-1) ** (size - len(columns))
        total += sign * product
    return total


def count_weighted_homomorphisms(
    pattern: nx.Graph,
    graph: nx.Graph,
    weights: Dict[Tuple, float] | None = None,
    workers: int | None = None,
) -> float:
    """Weighted homomorphism count (partition-function form of #CSP).

    ``weights`` maps data-graph edges (in either orientation) to non-negative
    weights; missing edges weigh 0 and absent entries default to 1.  With all
    weights 1 this reduces to plain homomorphism counting.
    """
    data_vertices = tuple(sorted(graph.nodes, key=repr))
    table: Dict[Tuple, float] = {}
    for u, v in graph.edges:
        weight = 1.0
        if weights is not None:
            weight = weights.get((u, v), weights.get((v, u), 1.0))
        table[(u, v)] = weight
        table[(v, u)] = weight
    factors = []
    names = [f"p{u}" for u in sorted(pattern.nodes, key=repr)]
    for u, v in pattern.edges:
        factors.append(Factor((f"p{u}", f"p{v}"), dict(table), name=f"w_{u}{v}"))
    query = FAQQuery(
        variables=[Variable(name, data_vertices) for name in names],
        free=[],
        aggregates={name: SemiringAggregate.sum() for name in names},
        factors=factors,
        semiring=SUM_PRODUCT,
        name="weighted-hom",
    )
    return float(execute(query, workers=workers).scalar_or_zero(SUM_PRODUCT))

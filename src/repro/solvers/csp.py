"""Constraint satisfaction problems as FAQ queries (Examples A.2 / A.4).

A CSP instance has variables over finite domains and constraints given by
allowed-tuple lists (the listing representation).  Satisfiability is the FAQ
over the Boolean semiring with every variable existentially aggregated;
solution counting uses the counting semiring; solution enumeration keeps all
variables free.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Sequence, Tuple

import networkx as nx

from repro.core.query import FAQQuery, QueryError, Variable
from repro.factors.factor import Factor
from repro.planner import execute
from repro.semiring.aggregates import SemiringAggregate
from repro.semiring.standard import BOOLEAN, COUNTING


@dataclass
class Constraint:
    """A constraint: a variable scope plus the list of allowed tuples."""

    scope: Tuple[str, ...]
    allowed: Tuple[Tuple[Any, ...], ...]

    @classmethod
    def from_predicate(
        cls,
        scope: Sequence[str],
        domains: Mapping[str, Sequence[Any]],
        predicate: Callable[..., bool],
    ) -> "Constraint":
        """Materialise a predicate over the scope's domains into allowed tuples."""
        allowed = tuple(
            values
            for values in itertools.product(*(domains[v] for v in scope))
            if predicate(*values)
        )
        return cls(tuple(scope), allowed)


class CSP:
    """A constraint satisfaction problem instance."""

    def __init__(
        self, domains: Mapping[str, Sequence[Any]], constraints: Sequence[Constraint]
    ) -> None:
        self.domains: Dict[str, Tuple[Any, ...]] = {v: tuple(d) for v, d in domains.items()}
        self.constraints: List[Constraint] = list(constraints)
        for constraint in self.constraints:
            unknown = [v for v in constraint.scope if v not in self.domains]
            if unknown:
                raise QueryError(f"constraint mentions unknown variables {unknown}")

    # ------------------------------------------------------------------ #
    @property
    def variables(self) -> Tuple[str, ...]:
        return tuple(sorted(self.domains))

    def _factors(self, semiring) -> List[Factor]:
        return [
            Factor(c.scope, {t: semiring.one for t in c.allowed}, name=f"C{i}")
            for i, c in enumerate(self.constraints)
        ]

    def satisfiability_query(self) -> FAQQuery:
        """FAQ over the Boolean semiring: is there a satisfying assignment?"""
        variables = [Variable(v, self.domains[v]) for v in self.variables]
        aggregates = {v: SemiringAggregate.logical_or() for v in self.variables}
        return FAQQuery(variables, [], aggregates, self._factors(BOOLEAN), BOOLEAN, name="csp-sat")

    def counting_query(self) -> FAQQuery:
        """FAQ over the counting semiring: how many satisfying assignments?"""
        variables = [Variable(v, self.domains[v]) for v in self.variables]
        aggregates = {v: SemiringAggregate.sum() for v in self.variables}
        return FAQQuery(variables, [], aggregates, self._factors(COUNTING), COUNTING, name="csp-count")

    def enumeration_query(self) -> FAQQuery:
        """FAQ with all variables free: the relation of all solutions."""
        variables = [Variable(v, self.domains[v]) for v in self.variables]
        return FAQQuery(variables, list(self.variables), {}, self._factors(BOOLEAN), BOOLEAN, name="csp-all")

    # ------------------------------------------------------------------ #
    def is_satisfiable(self, ordering="plan", workers: int | None = None) -> bool:
        """Decide satisfiability via the cost-based planner (default)."""
        result = execute(self.satisfiability_query(), ordering=ordering, workers=workers)
        return bool(result.scalar_or_zero(BOOLEAN))

    def count_solutions(self, ordering="plan", workers: int | None = None) -> int:
        """Count satisfying assignments via the cost-based planner."""
        result = execute(self.counting_query(), ordering=ordering, workers=workers)
        return int(result.scalar_or_zero(COUNTING))

    def solutions(self, ordering="plan", workers: int | None = None) -> List[Dict[str, Any]]:
        """Enumerate all satisfying assignments via the cost-based planner."""
        result = execute(self.enumeration_query(), ordering=ordering, workers=workers)
        scope = result.factor.scope
        return [dict(zip(scope, key)) for key in result.factor.table]

    def count_solutions_brute_force(self) -> int:
        """Reference count by exhaustive enumeration."""
        names = self.variables
        count = 0
        for values in itertools.product(*(self.domains[v] for v in names)):
            assignment = dict(zip(names, values))
            if all(
                tuple(assignment[v] for v in c.scope) in set(c.allowed) for c in self.constraints
            ):
                count += 1
        return count


# ---------------------------------------------------------------------- #
# graph colouring (Example A.2)
# ---------------------------------------------------------------------- #
def graph_coloring_csp(graph: nx.Graph, num_colors: int) -> CSP:
    """The ``k``-colouring CSP of a graph: one inequality constraint per edge."""
    colors = tuple(range(num_colors))
    domains = {f"v{u}": colors for u in graph.nodes}
    constraints = []
    for u, v in graph.edges:
        allowed = tuple((a, b) for a in colors for b in colors if a != b)
        constraints.append(Constraint((f"v{u}", f"v{v}"), allowed))
    return CSP(domains, constraints)


def is_k_colorable(graph: nx.Graph, num_colors: int) -> bool:
    """Decide ``k``-colourability via the CSP → FAQ reduction."""
    if graph.number_of_edges() == 0:
        return True
    return graph_coloring_csp(graph, num_colors).is_satisfiable()


def count_proper_colorings(graph: nx.Graph, num_colors: int) -> int:
    """Count proper ``k``-colourings (the chromatic polynomial at ``k``)."""
    if graph.number_of_edges() == 0:
        return num_colors ** graph.number_of_nodes()
    return graph_coloring_csp(graph, num_colors).count_solutions()

"""Conjunctive queries with quantifiers: BCQ, CQ, #CQ, QCQ and #QCQ.

These are the problems of Table 1 rows 1-3 and of Examples 1.3, A.3, A.5
and A.20.  A quantified conjunctive query

``Φ(X_1..X_f) = Q_{f+1} X_{f+1} ... Q_n X_n  ⋀_R R(vars(R))``

is reduced to FAQ by encoding every atom as a 0/1 factor and mapping ``∃`` to
a ``max`` aggregate and ``∀`` to the product aggregate; counting versions
wrap the free variables in an outer ``Σ`` block.  Because every factor is
0/1-valued the product aggregates are idempotent, so the whole Section 6.2
machinery (expression trees with extended components) applies.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple

from repro.core.query import FAQQuery, QueryError, Variable
from repro.db.relation import Relation
from repro.planner import execute
from repro.hypergraph.elimination import elimination_sequence
from repro.hypergraph.hypergraph import Hypergraph
from repro.semiring.aggregates import Aggregate, ProductAggregate, SemiringAggregate
from repro.semiring.standard import COUNTING

EXISTS = "exists"
FORALL = "forall"


@dataclass
class Atom:
    """One atom ``R(X_{i_1}, ..., X_{i_k})`` of a conjunctive query."""

    relation: Relation
    variables: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.variables) != len(self.relation.schema):
            raise QueryError(
                f"atom arity {len(self.variables)} does not match relation "
                f"{self.relation.name} of arity {len(self.relation.schema)}"
            )


@dataclass
class QuantifiedConjunctiveQuery:
    """A quantified conjunctive query (QCQ).

    Attributes
    ----------
    free:
        The free variables ``X_1..X_f``.
    quantifiers:
        The quantifier prefix over the remaining variables, outermost first,
        as ``(variable, EXISTS | FORALL)`` pairs.
    atoms:
        The conjunctive body.
    domains:
        Optional explicit domains; defaults to the active domain of each
        variable (the values it takes in the relations it appears in).
    """

    free: Tuple[str, ...]
    quantifiers: Tuple[Tuple[str, str], ...]
    atoms: Tuple[Atom, ...]
    domains: Dict[str, Tuple[Any, ...]] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    def __post_init__(self) -> None:
        for _, quantifier in self.quantifiers:
            if quantifier not in (EXISTS, FORALL):
                raise QueryError(f"unknown quantifier {quantifier!r}")
        names = list(self.free) + [v for v, _ in self.quantifiers]
        if len(set(names)) != len(names):
            raise QueryError("free and quantified variables must be distinct")
        self._fill_domains()

    def _fill_domains(self) -> None:
        for atom in self.atoms:
            for variable, attribute in zip(atom.variables, atom.relation.schema):
                index = atom.relation.schema.index(attribute)
                values = {row[index] for row in atom.relation.tuples}
                if variable in self.domains:
                    self.domains[variable] = tuple(
                        sorted(set(self.domains[variable]) | values, key=repr)
                    )
                else:
                    self.domains[variable] = tuple(sorted(values, key=repr))
        for variable in list(self.free) + [v for v, _ in self.quantifiers]:
            self.domains.setdefault(variable, ())
            if not self.domains[variable]:
                raise QueryError(
                    f"variable {variable} has an empty domain (appears in no atom "
                    "and no explicit domain was given)"
                )

    @property
    def all_variables(self) -> Tuple[str, ...]:
        return tuple(self.free) + tuple(v for v, _ in self.quantifiers)

    def hypergraph(self) -> Hypergraph:
        """The query hypergraph (one hyperedge per atom)."""
        return Hypergraph(self.all_variables, [frozenset(a.variables) for a in self.atoms])

    # ------------------------------------------------------------------ #
    # factor encoding (atoms as 0/1 factors on the counting semiring)
    # ------------------------------------------------------------------ #
    def _atom_factors(self):
        factors = []
        for atom in self.atoms:
            if len(set(atom.variables)) == len(atom.variables):
                renamed = atom.relation.rename(
                    dict(zip(atom.relation.schema, atom.variables))
                )
                factors.append(renamed.to_factor(COUNTING))
                continue
            # Collapse repeated variables within an atom (e.g. R(x, x)): keep
            # only the rows where the repeated positions agree and project
            # down to one column per distinct variable.
            keep: List[str] = []
            for variable in atom.variables:
                if variable not in keep:
                    keep.append(variable)
            rows = []
            for row in atom.relation.tuples:
                seen: Dict[str, Any] = {}
                consistent = True
                for variable, value in zip(atom.variables, row):
                    if variable in seen and seen[variable] != value:
                        consistent = False
                        break
                    seen[variable] = value
                if consistent:
                    rows.append(tuple(seen[v] for v in keep))
            collapsed = Relation(atom.relation.name + "#collapsed", tuple(keep), rows)
            factors.append(collapsed.to_factor(COUNTING))
        return factors

    # ------------------------------------------------------------------ #
    # FAQ reductions
    # ------------------------------------------------------------------ #
    def decision_query(self) -> FAQQuery:
        """The QCQ as an FAQ query (Example A.20): output 0/1 per free tuple."""
        variables = [Variable(v, self.domains[v]) for v in self.all_variables]
        aggregates: Dict[str, Aggregate] = {}
        for variable, quantifier in self.quantifiers:
            if quantifier == EXISTS:
                aggregates[variable] = SemiringAggregate.max()
            else:
                aggregates[variable] = ProductAggregate.product()
        return FAQQuery(
            variables=variables,
            free=list(self.free),
            aggregates=aggregates,
            factors=self._atom_factors(),
            semiring=COUNTING,
            name="qcq",
        )

    def counting_query(self) -> FAQQuery:
        """The #QCQ FAQ query (Example 1.3): count satisfying free tuples."""
        variables = [Variable(v, self.domains[v]) for v in self.all_variables]
        aggregates: Dict[str, Aggregate] = {v: SemiringAggregate.sum() for v in self.free}
        for variable, quantifier in self.quantifiers:
            if quantifier == EXISTS:
                aggregates[variable] = SemiringAggregate.max()
            else:
                aggregates[variable] = ProductAggregate.product()
        return FAQQuery(
            variables=variables,
            free=[],
            aggregates=aggregates,
            factors=self._atom_factors(),
            semiring=COUNTING,
            name="sharp-qcq",
        )

    # ------------------------------------------------------------------ #
    # solvers
    # ------------------------------------------------------------------ #
    def solve(
        self, ordering: Sequence[str] | str | None = "plan", workers: int | None = None
    ) -> Relation:
        """Evaluate the QCQ via the planner; returns the satisfying free tuples."""
        result = execute(self.decision_query(), ordering=ordering, workers=workers)
        rows = [key for key, value in result.factor.table.items() if value]
        return Relation("qcq-answers", self.free, rows)

    def count(
        self, ordering: Sequence[str] | str | None = "plan", workers: int | None = None
    ) -> int:
        """Evaluate the #QCQ via the planner; returns the number of answers."""
        result = execute(self.counting_query(), ordering=ordering, workers=workers)
        return int(result.scalar_or_zero(COUNTING))

    # ------------------------------------------------------------------ #
    # reference semantics (brute force, used by the tests)
    # ------------------------------------------------------------------ #
    def _holds(self, assignment: Dict[str, Any], index: int) -> bool:
        if index == len(self.quantifiers):
            for atom in self.atoms:
                row = tuple(assignment[v] for v in atom.variables)
                if row not in atom.relation.tuples:
                    return False
            return True
        variable, quantifier = self.quantifiers[index]
        results = []
        for value in self.domains[variable]:
            assignment[variable] = value
            results.append(self._holds(assignment, index + 1))
        del assignment[variable]
        return any(results) if quantifier == EXISTS else all(results)

    def solve_brute_force(self) -> Relation:
        """Reference evaluation by direct quantifier semantics."""
        rows = []
        for values in itertools.product(*(self.domains[v] for v in self.free)) if self.free else [()]:
            assignment = dict(zip(self.free, values))
            if self._holds(assignment, 0):
                rows.append(values)
        return Relation("qcq-answers", self.free, rows)

    def count_brute_force(self) -> int:
        """Reference count by direct quantifier semantics."""
        return len(self.solve_brute_force())

    # ------------------------------------------------------------------ #
    # the Chen–Dalmau style prefix width (QCQ baseline of Table 1)
    # ------------------------------------------------------------------ #
    def prefix_width(self) -> int:
        """The width of the quantifier-prefix graph (baseline comparator).

        Only orderings that respect the quantifier blocks as written are
        allowed (free variables, then each maximal block of identical
        quantifiers, each block permutable internally); the width is the
        minimum over such orderings of ``max_k |U_k|``.  The paper's
        ``faqw`` is never larger and can be unboundedly smaller
        (Section 7.2.1).
        """
        hypergraph = self.hypergraph()
        blocks: List[List[str]] = [list(self.free)] if self.free else []
        for variable, quantifier in self.quantifiers:
            if blocks and blocks[-1] and self._block_tag(blocks[-1][-1]) == quantifier:
                blocks[-1].append(variable)
            else:
                blocks.append([variable])
        best = None
        for ordering in self._block_respecting_orderings(blocks):
            steps = elimination_sequence(hypergraph, ordering)
            width = max(len(step.union) for step in steps)
            if best is None or width < best:
                best = width
        return best if best is not None else 0

    def _block_tag(self, variable: str) -> str:
        for v, quantifier in self.quantifiers:
            if v == variable:
                return quantifier
        return "free"

    def _block_respecting_orderings(self, blocks: List[List[str]]):
        pools = [list(itertools.permutations(block)) for block in blocks]
        for choice in itertools.product(*pools):
            ordering: List[str] = []
            for block in choice:
                ordering.extend(block)
            yield ordering


# ---------------------------------------------------------------------- #
# convenience constructors for the simpler fragments
# ---------------------------------------------------------------------- #
def boolean_cq(atoms: Sequence[Atom]) -> QuantifiedConjunctiveQuery:
    """A Boolean conjunctive query: every variable existentially quantified."""
    variables: List[str] = []
    for atom in atoms:
        for variable in atom.variables:
            if variable not in variables:
                variables.append(variable)
    return QuantifiedConjunctiveQuery(
        free=(), quantifiers=tuple((v, EXISTS) for v in variables), atoms=tuple(atoms)
    )


def conjunctive_query(atoms: Sequence[Atom], free: Sequence[str]) -> QuantifiedConjunctiveQuery:
    """A CQ with the given free variables; the rest are existential."""
    free = tuple(free)
    variables: List[str] = []
    for atom in atoms:
        for variable in atom.variables:
            if variable not in variables and variable not in free:
                variables.append(variable)
    return QuantifiedConjunctiveQuery(
        free=free, quantifiers=tuple((v, EXISTS) for v in variables), atoms=tuple(atoms)
    )


def count_conjunctive_query_answers(
    atoms: Sequence[Atom], free: Sequence[str], ordering: Sequence[str] | str | None = "plan"
) -> int:
    """#CQ (Table 1 row 3): the number of distinct free tuples with a match."""
    return conjunctive_query(atoms, free).count(ordering=ordering)

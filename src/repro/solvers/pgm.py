"""Marginal and MAP inference: InsideOut vs the classic PGM baselines.

Table 1 rows 5-6 state that InsideOut computes marginals and MAP estimates
in ``O~(N^faqw + output)`` whereas the prior PGM algorithms are bounded by
the (integral cover / treewidth style) width of the model.  The functions
here run both sides on the same
:class:`~repro.pgm.model.DiscreteGraphicalModel` so the benchmarks and the
integration tests can compare results and costs directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Sequence, Tuple

from repro.core.insideout import InsideOutResult, inside_out
from repro.core.variable_elimination import variable_elimination
from repro.pgm.junction_tree import JunctionTree
from repro.pgm.model import DiscreteGraphicalModel
from repro.planner import STRATEGY_INSIDEOUT, execute


def marginal_insideout(
    model: DiscreteGraphicalModel,
    variables: Sequence[str],
    ordering: Sequence[str] | str | None = "plan",
    backend: str | None = None,
    workers: int | None = None,
) -> Dict[Tuple[Any, ...], float]:
    """Unnormalised marginal over ``variables`` via the planner + InsideOut.

    The cost-based planner picks the elimination ordering and the factor
    backend (PGM potentials are usually dense over small domains, so the
    vectorized ndarray representation typically wins); pass explicit
    ``ordering`` / ``backend`` values to override it.
    """
    query = model.marginal_query(list(variables))
    result = execute(
        query, ordering=ordering, backend=backend, strategy=STRATEGY_INSIDEOUT, workers=workers
    )
    return dict(result.factor.table)


def map_insideout(
    model: DiscreteGraphicalModel,
    variables: Sequence[str],
    ordering: Sequence[str] | str | None = "plan",
    backend: str | None = None,
    workers: int | None = None,
) -> Dict[Tuple[Any, ...], float]:
    """Unnormalised max-marginals over ``variables`` via the planner."""
    query = model.map_query(list(variables))
    result = execute(
        query, ordering=ordering, backend=backend, strategy=STRATEGY_INSIDEOUT, workers=workers
    )
    return dict(result.factor.table)


def partition_function_insideout(
    model: DiscreteGraphicalModel,
    ordering: Sequence[str] | str | None = "plan",
    backend: str | None = None,
    workers: int | None = None,
) -> float:
    """The partition function ``Z`` via the planner + InsideOut."""
    query = model.partition_function_query()
    result = execute(
        query, ordering=ordering, backend=backend, strategy=STRATEGY_INSIDEOUT, workers=workers
    )
    return float(result.scalar_or_zero(query.semiring))


def marginal_variable_elimination(
    model: DiscreteGraphicalModel,
    variables: Sequence[str],
    ordering: Sequence[str] | str | None = None,
    backend: str = "sparse",
) -> Dict[Tuple[Any, ...], float]:
    """Marginals via textbook (pairwise, projection-free) variable elimination.

    The baseline keeps the written ordering and the listing representation
    by default so that its cost profile stays comparable with the paper's
    prior-work bounds; pass ``ordering="plan"`` to let the planner search,
    or ``backend="auto"`` / ``"dense"`` to vectorize it as well.
    """
    query = model.marginal_query(list(variables))
    result = variable_elimination(query, ordering=ordering, backend=backend)
    return dict(result.factor.table)


def marginal_junction_tree(
    model: DiscreteGraphicalModel, variable: str
) -> Dict[Any, float]:
    """Single-variable marginal via the dense junction-tree baseline."""
    return JunctionTree(model, mode="sum").marginal(variable)


def map_junction_tree(model: DiscreteGraphicalModel, variable: str) -> Dict[Any, float]:
    """Single-variable max-marginal via the dense junction-tree baseline."""
    return JunctionTree(model, mode="max").marginal(variable)


@dataclass
class InferenceComparison:
    """Side-by-side costs of InsideOut and the junction-tree baseline."""

    insideout_result: InsideOutResult
    insideout_max_intermediate: int
    junction_tree_max_bag: int
    junction_tree_dense_cells: int

    @property
    def speedup_proxy(self) -> float:
        """Dense-cell count divided by InsideOut's largest intermediate."""
        denominator = max(self.insideout_max_intermediate, 1)
        return self.junction_tree_dense_cells / denominator


def compare_marginal_inference(
    model: DiscreteGraphicalModel, variables: Sequence[str]
) -> InferenceComparison:
    """Run InsideOut and the junction tree on the same marginal query."""
    query = model.marginal_query(list(variables))
    io_result = inside_out(query, ordering="auto")
    tree = JunctionTree(model, mode="sum")
    return InferenceComparison(
        insideout_result=io_result,
        insideout_max_intermediate=io_result.stats.max_intermediate_size,
        junction_tree_max_bag=tree.max_bag_size,
        junction_tree_dense_cells=tree.largest_potential_cells,
    )

"""Natural joins and pattern counting as FAQ queries (Table 1, Joins row).

A natural join is the quantifier-free conjunctive query
``⋃_x ⋂_S ψ_S(x_S)`` — an FAQ over the Boolean semiring with every variable
free (Example A.6).  Counting homomorphisms of a small pattern graph into a
data graph (triangle counting, Example A.8) is the same query over the
counting semiring with no free variables.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

import networkx as nx

from repro.core.query import FAQQuery, Variable
from repro.db.relation import Relation, RelationError
from repro.planner import execute
from repro.semiring.aggregates import SemiringAggregate
from repro.semiring.standard import BOOLEAN, COUNTING


def _domains_from_relations(relations: Sequence[Relation]) -> Dict[str, Tuple[Any, ...]]:
    """Active domain of every attribute across the given relations."""
    domains: Dict[str, set] = {}
    for relation in relations:
        for row in relation.tuples:
            for attribute, value in zip(relation.schema, row):
                domains.setdefault(attribute, set()).add(value)
    return {a: tuple(sorted(values, key=repr)) for a, values in domains.items()}


def natural_join_query(relations: Sequence[Relation]) -> FAQQuery:
    """The FAQ query (Boolean semiring, all variables free) of a natural join."""
    domains = _domains_from_relations(relations)
    attributes = sorted(domains)
    variables = [Variable(a, domains[a]) for a in attributes]
    factors = [r.to_factor(BOOLEAN) for r in relations]
    return FAQQuery(
        variables=variables,
        free=attributes,
        aggregates={},
        factors=factors,
        semiring=BOOLEAN,
        name="natural-join",
    )


def natural_join_insideout(
    relations: Sequence[Relation],
    ordering: Sequence[str] | str | None = "plan",
    workers: int | None = None,
) -> Relation:
    """Evaluate a natural join via the cost-based planner.

    The planner routes α-acyclic joins to Yannakakis' algorithm, cyclic
    joins to the worst-case optimal generic join, and everything else to
    InsideOut; pass an explicit ``ordering`` to pin the elimination order.
    """
    query = natural_join_query(relations)
    result = execute(query, ordering=ordering, workers=workers)
    return Relation("join", result.factor.scope, result.factor.table.keys())


def projected_join_query(
    relations: Sequence[Relation], output_attributes: Sequence[str]
) -> FAQQuery:
    """The projection ``π_out(R_1 ⋈ ... ⋈ R_m)`` as an FAQ query.

    Output attributes are free; every other attribute is existentially
    aggregated (``∨`` over the Boolean semiring), so the planner can bound
    the work by the *projected* output instead of materialising the full
    join first.
    """
    domains = _domains_from_relations(relations)
    out = list(output_attributes)
    missing = [a for a in out if a not in domains]
    if missing:
        raise RelationError(
            f"projection attributes {missing} appear in no relation schema"
        )
    bound = [a for a in sorted(domains) if a not in set(out)]
    variables = [Variable(a, domains[a]) for a in out + bound]
    factors = [r.to_factor(BOOLEAN) for r in relations]
    aggregates = {a: SemiringAggregate.logical_or() for a in bound}
    return FAQQuery(
        variables=variables,
        free=out,
        aggregates=aggregates,
        factors=factors,
        semiring=BOOLEAN,
        name="projected-join",
    )


def join_size_query(relations: Sequence[Relation]) -> FAQQuery:
    """The FAQ query counting the number of join results (no free variables)."""
    domains = _domains_from_relations(relations)
    attributes = sorted(domains)
    variables = [Variable(a, domains[a]) for a in attributes]
    factors = [r.to_factor(COUNTING) for r in relations]
    aggregates = {a: SemiringAggregate.sum() for a in attributes}
    return FAQQuery(
        variables=variables,
        free=[],
        aggregates=aggregates,
        factors=factors,
        semiring=COUNTING,
        name="join-size",
    )


def count_join_results(relations: Sequence[Relation], workers: int | None = None) -> int:
    """``|R_1 ⋈ ... ⋈ R_m|`` computed via the planner (counting semiring)."""
    query = join_size_query(relations)
    result = execute(query, workers=workers)
    return int(result.scalar_or_zero(COUNTING))


# ---------------------------------------------------------------------- #
# pattern / homomorphism counting (Example A.8)
# ---------------------------------------------------------------------- #
def _edge_relation(graph: nx.Graph) -> List[Tuple[Any, Any]]:
    """Both orientations of every edge (homomorphism counting convention)."""
    pairs: List[Tuple[Any, Any]] = []
    for u, v in graph.edges:
        pairs.append((u, v))
        pairs.append((v, u))
    return pairs


def homomorphism_count_query(pattern: nx.Graph, graph: nx.Graph) -> FAQQuery:
    """The FAQ query counting homomorphisms from ``pattern`` into ``graph``.

    One variable per pattern vertex (domain: the data-graph vertices), one
    edge factor per pattern edge, counting semiring, no free variables.
    """
    data_vertices = tuple(sorted(graph.nodes, key=repr))
    edge_pairs = _edge_relation(graph)
    variables = [Variable(f"v{u}", data_vertices) for u in sorted(pattern.nodes, key=repr)]
    factors = []
    for u, v in pattern.edges:
        relation = Relation(f"E_{u}{v}", (f"v{u}", f"v{v}"), edge_pairs)
        factors.append(relation.to_factor(COUNTING))
    aggregates = {f"v{u}": SemiringAggregate.sum() for u in pattern.nodes}
    return FAQQuery(
        variables=variables,
        free=[],
        aggregates=aggregates,
        factors=factors,
        semiring=COUNTING,
        name="hom-count",
    )


def count_homomorphisms(
    pattern: nx.Graph, graph: nx.Graph, workers: int | None = None
) -> int:
    """Number of homomorphisms from ``pattern`` to ``graph`` via the planner."""
    query = homomorphism_count_query(pattern, graph)
    return int(execute(query, workers=workers).scalar_or_zero(COUNTING))


def count_triangles(graph: nx.Graph) -> int:
    """Number of triangles in ``graph`` (each counted once).

    A triangle has 6 automorphic homomorphic images, so the homomorphism
    count is divided by 6 — this matches ``networkx`` triangle counting and
    is the quantity Example A.8 computes.
    """
    triangle = nx.complete_graph(3)
    injective_like = count_homomorphisms(triangle, graph)
    return injective_like // 6


def triangle_join_relations(graph: nx.Graph) -> List[Relation]:
    """The three binary relations of the triangle join query R(A,B) S(B,C) T(A,C)."""
    pairs = _edge_relation(graph)
    return [
        Relation("R", ("A", "B"), pairs),
        Relation("S", ("B", "C"), pairs),
        Relation("T", ("A", "C"), pairs),
    ]

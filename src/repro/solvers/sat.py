"""SAT and #SAT: InsideOut over compactly represented factors (Section 8.3).

Clauses are kept in their natural compact representation
(:class:`~repro.factors.compact.Clause` — a box factor, Definition 8.2) and
variables are eliminated directly on clauses:

* **SAT** (Section 8.3.1): eliminating a variable is Davis–Putnam
  resolution — every positive/negative clause pair produces a resolvent,
  tautologies are dropped and subsumed clauses removed.  Along a *nested
  elimination order* of a β-acyclic formula every resolution is a
  subsumption resolution, so the clause set never grows and the algorithm
  runs in polynomial time (Theorem 8.3).
* **#SAT**: exact model counting.  The fully general weighted-clause
  elimination of Section 8.3.2 is replaced by an equivalent InsideOut run
  over the listing representation of each clause (a clause of width ``w``
  expands to ``2^w - 1`` satisfying tuples).  This substitution preserves
  the β-acyclic tractability *shape* for bounded clause width — which is
  what the Section 8 benchmark exercises — and is documented in DESIGN.md.

Brute-force evaluation is provided for cross-checking.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.core.query import FAQQuery, Variable
from repro.factors.compact import Clause
from repro.planner import STRATEGY_INSIDEOUT, execute
from repro.hypergraph.acyclicity import is_beta_acyclic, nested_elimination_order
from repro.hypergraph.hypergraph import Hypergraph
from repro.semiring.aggregates import SemiringAggregate
from repro.semiring.standard import COUNTING


class CNFFormula:
    """A CNF formula: a set of clauses over named Boolean variables."""

    def __init__(self, clauses: Iterable[Clause]) -> None:
        self.clauses: List[Clause] = [c for c in clauses if not c.is_tautology]
        names: Set[str] = set()
        for clause in self.clauses:
            names |= clause.variables
        self.variables: Tuple[str, ...] = tuple(sorted(names))

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.clauses)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CNFFormula(vars={len(self.variables)}, clauses={len(self.clauses)})"

    def hypergraph(self) -> Hypergraph:
        """The formula hypergraph: one hyperedge per clause."""
        return Hypergraph(self.variables, [c.variables for c in self.clauses])

    def is_beta_acyclic(self) -> bool:
        """``True`` iff the clause hypergraph is β-acyclic."""
        return is_beta_acyclic(self.hypergraph())

    def evaluate(self, assignment: Dict[str, bool]) -> bool:
        """Evaluate the formula under a full assignment."""
        return all(clause.satisfied_by(assignment) for clause in self.clauses)

    # ------------------------------------------------------------------ #
    # brute force references
    # ------------------------------------------------------------------ #
    def count_models_brute_force(self) -> int:
        """Model counting by exhaustive enumeration (reference)."""
        count = 0
        for values in itertools.product((False, True), repeat=len(self.variables)):
            if self.evaluate(dict(zip(self.variables, values))):
                count += 1
        return count

    def is_satisfiable_brute_force(self) -> bool:
        """Satisfiability by exhaustive enumeration (reference)."""
        for values in itertools.product((False, True), repeat=len(self.variables)):
            if self.evaluate(dict(zip(self.variables, values))):
                return True
        return not self.clauses


@dataclass
class DavisPutnamStats:
    """Counters describing one Davis–Putnam elimination run."""

    max_clauses: int = 0
    total_resolvents: int = 0
    eliminations: int = 0


def _subsume(clauses: List[Clause]) -> List[Clause]:
    """Remove duplicate and subsumed clauses (keep minimal ones)."""
    unique: Dict[FrozenSet[Tuple[str, bool]], Clause] = {}
    for clause in clauses:
        key = frozenset((lit.variable, lit.positive) for lit in clause.literals.values())
        unique.setdefault(key, clause)
    keys = list(unique.keys())
    kept: List[Clause] = []
    for i, key in enumerate(keys):
        subsumed = any(other < key for j, other in enumerate(keys) if j != i)
        # ``other < key``: another clause's literal set is a strict subset, so
        # it implies this clause; also drop exact duplicates beyond the first.
        if not subsumed:
            kept.append(unique[key])
    return kept


def davis_putnam_sat(
    formula: CNFFormula, ordering: Sequence[str] | None = None
) -> Tuple[bool, DavisPutnamStats]:
    """Decide satisfiability by Davis–Putnam variable elimination.

    ``ordering`` is the vertex ordering (variables eliminated from the back);
    for β-acyclic formulas pass a nested elimination order to guarantee that
    the clause set never grows (Theorem 8.3).  Defaults to a NEO when one
    exists and to the sorted variable order otherwise.
    """
    stats = DavisPutnamStats()
    if not formula.clauses:
        return True, stats

    if ordering is None:
        ordering = nested_elimination_order(formula.hypergraph()) or list(formula.variables)
    order = list(ordering)

    clauses = _subsume(list(formula.clauses))
    stats.max_clauses = len(clauses)

    for variable in reversed(order):
        positive = [c for c in clauses if c.contains(variable) and c.literal_for(variable).positive]
        negative = [c for c in clauses if c.contains(variable) and not c.literal_for(variable).positive]
        rest = [c for c in clauses if not c.contains(variable)]
        resolvents: List[Clause] = []
        for clause_p in positive:
            for clause_n in negative:
                resolvent = clause_p.resolve(clause_n, variable)
                stats.total_resolvents += 1
                if resolvent.is_tautology:
                    continue
                if resolvent.is_empty:
                    stats.eliminations += 1
                    return False, stats
                resolvents.append(resolvent)
        clauses = _subsume(rest + resolvents)
        stats.eliminations += 1
        stats.max_clauses = max(stats.max_clauses, len(clauses))
        if any(c.is_empty for c in clauses):
            return False, stats

    return True, stats


# ---------------------------------------------------------------------- #
# #SAT via FAQ (listing representation of each clause)
# ---------------------------------------------------------------------- #
def sharp_sat_query(formula: CNFFormula) -> FAQQuery:
    """The #SAT instance as an FAQ-SS query over the counting semiring."""
    variables = [Variable(v, (False, True)) for v in formula.variables]
    aggregates = {v: SemiringAggregate.sum() for v in formula.variables}
    factors = [clause.to_factor(COUNTING) for clause in formula.clauses]
    return FAQQuery(variables, [], aggregates, factors, COUNTING, name="sharp-sat")


def count_models(
    formula: CNFFormula,
    ordering: Sequence[str] | str | None = None,
    workers: int | None = None,
) -> int:
    """Exact model counting via the planner.

    For β-acyclic formulas the nested elimination order is pinned by
    default — together with the InsideOut strategy, since the Theorem 8.4
    argument (every intermediate factor stays nested inside an input clause
    scope, hence polynomial for bounded clause width) is stated for
    InsideOut's elimination — which makes the plan fully pinned and free of
    any scoring overhead.  Without a NEO the cost-based planner searches
    for an ordering; an explicit ``ordering`` is likewise pinned.
    """
    if not formula.clauses:
        return 2 ** len(formula.variables)
    query = sharp_sat_query(formula)
    if ordering is None:
        neo = nested_elimination_order(formula.hypergraph())
        ordering = list(neo) if neo is not None else "plan"
    if isinstance(ordering, str):
        result = execute(query, ordering=ordering, workers=workers)
    else:
        result = execute(
            query, ordering=ordering, strategy=STRATEGY_INSIDEOUT, backend="sparse",
            workers=workers,
        )
    return int(result.scalar_or_zero(COUNTING))


def is_satisfiable(formula: CNFFormula, ordering: Sequence[str] | None = None) -> bool:
    """Satisfiability via Davis–Putnam elimination (InsideOut on box factors)."""
    satisfiable, _ = davis_putnam_sat(formula, ordering)
    return satisfiable

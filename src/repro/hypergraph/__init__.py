"""Hypergraph substrate: widths, covers, orderings and decompositions.

The FAQ paper's runtime guarantees are phrased in terms of hypergraph
parameters: fractional edge covers and the AGM bound (Section 4.2), tree
decompositions and the treewidth / hypertree width / fractional hypertree
width family (Section 4.3), vertex orderings and induced widths
(Section 4.4), and α/β-acyclicity (Definitions 4.4 / 4.5).  This package
implements that substrate from scratch on top of ``networkx`` (for Gaifman
graphs and trees) and ``scipy`` (for the covering linear programs).
"""

from repro.hypergraph.hypergraph import Hypergraph, HypergraphError
from repro.hypergraph.covers import (
    agm_bound,
    clear_rho_star_cache,
    fractional_edge_cover,
    fractional_edge_cover_number,
    integral_edge_cover_number,
    rho_star_cache_info,
)
from repro.hypergraph.elimination import (
    EliminationStep,
    elimination_sequence,
    induced_width,
    induced_sets,
)
from repro.hypergraph.acyclicity import (
    gyo_reduction,
    is_alpha_acyclic,
    is_beta_acyclic,
    join_tree,
    nested_elimination_order,
)
from repro.hypergraph.treedecomp import (
    TreeDecomposition,
    decomposition_from_ordering,
    fractional_hypertree_width,
    hypertree_width,
    ordering_from_decomposition,
    treewidth,
)
from repro.hypergraph.orderings import (
    best_ordering_exhaustive,
    best_ordering_search,
    min_degree_ordering,
    min_fill_ordering,
    greedy_fractional_cover_ordering,
)

__all__ = [
    "Hypergraph",
    "HypergraphError",
    "agm_bound",
    "clear_rho_star_cache",
    "rho_star_cache_info",
    "fractional_edge_cover",
    "fractional_edge_cover_number",
    "integral_edge_cover_number",
    "EliminationStep",
    "elimination_sequence",
    "induced_width",
    "induced_sets",
    "gyo_reduction",
    "is_alpha_acyclic",
    "is_beta_acyclic",
    "join_tree",
    "nested_elimination_order",
    "TreeDecomposition",
    "decomposition_from_ordering",
    "fractional_hypertree_width",
    "hypertree_width",
    "ordering_from_decomposition",
    "treewidth",
    "best_ordering_exhaustive",
    "best_ordering_search",
    "min_degree_ordering",
    "min_fill_ordering",
    "greedy_fractional_cover_ordering",
]

"""Elimination hypergraph sequences (Definitions 4.8 and 5.4 of the paper).

Given a vertex ordering ``σ = (v_1, ..., v_n)`` the elimination sequence
processes vertices from the back.  At step ``k`` (before eliminating
``v_k``) the current hypergraph ``H_k`` determines

* ``∂(v_k)`` — the edges of ``H_k`` incident to ``v_k``,
* ``U_k`` — the union of those edges,

and ``H_{k-1}`` is obtained by removing ``∂(v_k)`` and adding back the edge
``U_k - {v_k}`` (for ordinary / semiring vertices), or by simply dropping
``v_k`` from every edge (for product-aggregate vertices, Definition 5.4).
The sets ``U_k`` are exactly what the induced width, the FAQ-width and
InsideOut's intermediate factor scopes are computed from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, List, Sequence, Tuple

from repro.hypergraph.hypergraph import Hypergraph, HypergraphError


@dataclass(frozen=True)
class EliminationStep:
    """The state of the elimination sequence just before eliminating a vertex.

    Attributes
    ----------
    vertex:
        The vertex ``v_k`` being eliminated at this step.
    position:
        Its (1-based) position ``k`` in the vertex ordering.
    incident:
        The edges ``∂(v_k)`` of ``H_k`` containing the vertex.
    union:
        ``U_k = ∪ ∂(v_k)``.
    hypergraph:
        The hypergraph ``H_k`` itself.
    is_product:
        ``True`` if the vertex was treated as a product-aggregate vertex.
    """

    vertex: object
    position: int
    incident: Tuple[FrozenSet, ...]
    union: FrozenSet
    hypergraph: Hypergraph
    is_product: bool = False


def _validated_order(hypergraph: Hypergraph, ordering: Sequence) -> List:
    """The ordering as a list, checked to enumerate ``V`` exactly once."""
    order = list(ordering)
    if set(order) != set(hypergraph.vertices):
        missing = set(hypergraph.vertices) - set(order)
        extra = set(order) - set(hypergraph.vertices)
        raise HypergraphError(
            f"ordering must list every vertex exactly once (missing={sorted(map(repr, missing))}, "
            f"extra={sorted(map(repr, extra))})"
        )
    if len(set(order)) != len(order):
        raise HypergraphError("ordering contains duplicates")
    return order


def elimination_sequence(
    hypergraph: Hypergraph,
    ordering: Sequence,
    product_vertices: Iterable | None = None,
) -> List[EliminationStep]:
    """Compute the elimination hypergraph sequence along ``ordering``.

    Parameters
    ----------
    hypergraph:
        The query hypergraph ``H``.
    ordering:
        A vertex ordering ``σ`` listing every vertex of ``H`` exactly once.
    product_vertices:
        The vertices whose aggregate is a product aggregate; these follow the
        Definition 5.4 rule (drop the vertex from every edge) instead of the
        Definition 4.8 rule (replace ``∂(v)`` by ``U - {v}``).

    Returns
    -------
    list of :class:`EliminationStep`
        One entry per vertex, listed in the *ordering* order
        (``steps[k-1].vertex == ordering[k-1]``), even though they are
        computed from the back.
    """
    order = _validated_order(hypergraph, ordering)
    product_set = frozenset(product_vertices or ())
    current = hypergraph
    steps_rev: List[EliminationStep] = []
    for k in range(len(order), 0, -1):
        vertex = order[k - 1]
        incident = tuple(e for e in current.edges if vertex in e)
        union: FrozenSet = frozenset().union(*incident) if incident else frozenset({vertex})
        is_product = vertex in product_set
        steps_rev.append(
            EliminationStep(
                vertex=vertex,
                position=k,
                incident=incident,
                union=union,
                hypergraph=current,
                is_product=is_product,
            )
        )
        remaining_vertices = set(current.vertices) - {vertex}
        if is_product:
            new_edges = [e - {vertex} for e in current.edges]
            new_edges = [e for e in new_edges if e]
        else:
            new_edges = [e for e in current.edges if vertex not in e]
            residual = union - {vertex}
            if residual:
                new_edges.append(residual)
        current = Hypergraph(remaining_vertices, new_edges)

    return list(reversed(steps_rev))


def induced_unions(
    hypergraph: Hypergraph,
    ordering: Sequence,
    product_vertices: Iterable | None = None,
) -> Dict[object, FrozenSet]:
    """Map each vertex to its induced set ``U_k`` without building ``H_k``.

    Semantically identical to :func:`induced_sets`, but the intermediate
    hypergraphs are kept as plain edge lists instead of
    :class:`~repro.hypergraph.hypergraph.Hypergraph` instances.  The cost
    model scores every candidate ordering with one pass of this function, so
    avoiding the per-step object construction is a real planning win.
    """
    order = _validated_order(hypergraph, ordering)
    product_set = frozenset(product_vertices or ())
    edges: List[FrozenSet] = list(hypergraph.edges)
    unions: Dict[object, FrozenSet] = {}
    for k in range(len(order), 0, -1):
        vertex = order[k - 1]
        incident = [e for e in edges if vertex in e]
        union: FrozenSet = frozenset().union(*incident) if incident else frozenset({vertex})
        unions[vertex] = union
        if vertex in product_set:
            edges = [e - {vertex} for e in edges]
            edges = [e for e in edges if e]
        else:
            edges = [e for e in edges if vertex not in e]
            residual = union - {vertex}
            if residual:
                edges.append(residual)
    return unions


def induced_sets(
    hypergraph: Hypergraph,
    ordering: Sequence,
    product_vertices: Iterable | None = None,
) -> Dict[object, FrozenSet]:
    """Map each vertex to its induced set ``U_k`` along ``ordering``."""
    steps = elimination_sequence(hypergraph, ordering, product_vertices)
    return {step.vertex: step.union for step in steps}


def induced_width(
    hypergraph: Hypergraph,
    ordering: Sequence,
    width_fn: Callable[[FrozenSet], float],
    restrict_to: Iterable | None = None,
    product_vertices: Iterable | None = None,
) -> float:
    """The induced ``g``-width of an ordering (Definition 4.11).

    ``width_fn`` receives each ``U_k`` and the maximum is returned.  When
    ``restrict_to`` is given, only steps whose vertex is in that set count
    (this is how the FAQ-width restricts to the set ``K`` of free/semiring
    vertices, Definition 5.10).
    """
    steps = elimination_sequence(hypergraph, ordering, product_vertices)
    allowed = set(restrict_to) if restrict_to is not None else None
    best = 0.0
    for step in steps:
        if allowed is not None and step.vertex not in allowed:
            continue
        value = width_fn(step.union)
        if value > best:
            best = value
    return best

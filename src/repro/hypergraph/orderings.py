"""Vertex-ordering heuristics (min-fill, min-degree, greedy cover, exhaustive).

Orderings are central to the paper: InsideOut's runtime is governed by the
induced sets ``U_k`` of the chosen ordering, and the widths of Section 4.4
are minima of induced widths over orderings.  For large hypergraphs finding
optimal orderings is NP-hard (Section 7), so the usual PGM/CSP heuristics are
provided alongside an exhaustive search for small instances.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, List, Sequence, Tuple

import networkx as nx

from repro.hypergraph.covers import fractional_edge_cover_number
from repro.hypergraph.hypergraph import Hypergraph

# Fractional-cover costs come out of an LP solver, so two vertices whose
# neighbourhoods have the *same* cover number can differ in the last float
# bits and flip the greedy choice between runs or platforms.  All heuristics
# therefore compare costs quantised to this many decimals and break the
# remaining ties on the vertex repr — orderings are fully deterministic.
_COST_DECIMALS = 9


def _quantized(cost: float) -> float:
    """Quantise an LP-derived cost so equal-by-maths costs compare equal."""
    return round(cost, _COST_DECIMALS)


def _fill_in_count(graph: nx.Graph, vertex) -> int:
    """Number of edges that eliminating ``vertex`` would add to ``graph``."""
    neighbors = list(graph.neighbors(vertex))
    missing = 0
    for i, u in enumerate(neighbors):
        for v in neighbors[i + 1:]:
            if not graph.has_edge(u, v):
                missing += 1
    return missing


def min_fill_ordering(hypergraph: Hypergraph) -> List:
    """The min-fill elimination heuristic on the Gaifman graph.

    Vertices are eliminated in the order that greedily minimises the number
    of fill-in edges; the returned list is the *vertex ordering* ``σ``
    (i.e. the reverse of the elimination order), matching the convention of
    Definition 4.7 where elimination proceeds from the back of ``σ``.
    Cost ties break on the vertex repr, so the ordering is deterministic
    regardless of vertex insertion order.

    Fill-in counts are maintained incrementally: eliminating ``v`` can only
    change the count of a vertex adjacent to ``v`` or to one of ``v``'s
    neighbours (fill edges are added inside ``N(v)`` only), so each round
    recomputes counts just for that 2-hop neighbourhood instead of for every
    remaining vertex.
    """
    graph = hypergraph.gaifman_graph()
    fill: dict = {v: _fill_in_count(graph, v) for v in graph.nodes}
    eliminated: List = []
    while graph.number_of_nodes():
        vertex = min(graph.nodes, key=lambda v: (fill[v], repr(v)))
        neighbors = list(graph.neighbors(vertex))
        for i, u in enumerate(neighbors):
            for v in neighbors[i + 1:]:
                graph.add_edge(u, v)
        graph.remove_node(vertex)
        del fill[vertex]
        affected = set(neighbors)
        for u in neighbors:
            affected.update(graph.neighbors(u))
        for u in affected:
            if u in graph:
                fill[u] = _fill_in_count(graph, u)
        eliminated.append(vertex)
    return list(reversed(eliminated))


def min_degree_ordering(hypergraph: Hypergraph) -> List:
    """The min-degree elimination heuristic (same conventions as min-fill)."""
    graph = hypergraph.gaifman_graph()
    eliminated: List = []
    while graph.number_of_nodes():
        vertex = min(graph.nodes, key=lambda v: (graph.degree(v), repr(v)))
        neighbors = list(graph.neighbors(vertex))
        for i, u in enumerate(neighbors):
            for v in neighbors[i + 1:]:
                graph.add_edge(u, v)
        graph.remove_node(vertex)
        eliminated.append(vertex)
    return list(reversed(eliminated))


def greedy_fractional_cover_ordering(hypergraph: Hypergraph) -> List:
    """Greedy ordering minimising ``ρ*`` of each eliminated neighbourhood.

    At every step the vertex whose current neighbourhood (the union of its
    incident edges) has the smallest fractional edge cover number w.r.t. the
    *original* hypergraph is eliminated next.  More expensive than min-fill
    (one LP per candidate per step) but tracks the FAQ-width objective
    directly.
    """
    original = hypergraph
    current = hypergraph
    eliminated: List = []
    while current.num_vertices:
        def cost(vertex) -> float:
            union = current.neighborhood(vertex)
            if not union:
                return 0.0
            return _quantized(fractional_edge_cover_number(original, union))

        vertex = min(current.vertices, key=lambda v: (cost(v), repr(v)))
        union = current.neighborhood(vertex)
        rest = set(current.vertices) - {vertex}
        new_edges = [e for e in current.edges if vertex not in e]
        residual = union - {vertex}
        if residual:
            new_edges.append(residual)
        current = Hypergraph(rest, new_edges)
        eliminated.append(vertex)
    return list(reversed(eliminated))


def best_ordering_search(
    hypergraph: Hypergraph,
    width_fn: Callable[[FrozenSet], float],
    free: Sequence = (),
) -> Tuple[List, float]:
    """Optimal induced width by branch-and-bound over elimination prefixes.

    ``free`` vertices (Section 4.4: the free variables of an FAQ query) are
    constrained to the *prefix* of the returned ordering — elimination runs
    from the back, so they are eliminated last.  The search enforces this
    structurally instead of post-filtering: a free vertex only becomes an
    elimination candidate once every bound vertex is gone, so the search
    space is ``|bound|! · |free|!`` branches (before pruning) rather than
    ``n!`` filtered down.  With ``free`` empty the search is unconstrained
    and identical to the historical behaviour.

    Semantically identical to the exhaustive permutation scan (the search is
    complete), but exponentially cheaper: orderings are extended from the
    *back* — the end elimination starts from — one eliminated vertex at a
    time, and

    * a prefix is pruned as soon as its running maximum step width reaches
      the incumbent (step widths only accumulate along a prefix, so no
      completion can improve on it);
    * the induced set ``U(v, S)`` of eliminating ``v`` after the set ``S``
      depends only on the *set* ``S`` (not on the order it was eliminated
      in — the classic elimination-graph property), so per-step widths are
      memoised by ``(S, v)`` and every prefix that permutes the same suffix
      shares them;
    * a dominance memo per eliminated set ``S`` cuts any prefix reaching
      ``S`` with a running maximum no better than an earlier visit,
      bounding the search by the subset lattice instead of the factorial.

    Returns ``(ordering, width)`` where ``ordering`` is the lexicographically
    smallest (over the repr-sorted vertex list, i.e. the first the
    permutation scan would have found) ordering attaining the optimal
    quantised width.
    """
    vertices = sorted(hypergraph.vertices, key=repr)
    n = len(vertices)
    if n == 0:
        return [], 0.0
    free_set = frozenset(free) & frozenset(vertices)
    bound_count = n - len(free_set)

    adjacency = hypergraph.gaifman_adjacency()

    def union_after(vertex, eliminated: frozenset) -> FrozenSet:
        """``U(v, S)``: closed neighbourhood of ``v`` reachable through ``S``."""
        seen = {vertex}
        stack = [vertex]
        union = {vertex}
        while stack:
            for neighbor in adjacency[stack.pop()]:
                if neighbor in seen:
                    continue
                seen.add(neighbor)
                if neighbor in eliminated:
                    stack.append(neighbor)
                else:
                    union.add(neighbor)
        return frozenset(union)

    step_memo: dict = {}

    def step_width(eliminated: frozenset, vertex) -> float:
        key = (eliminated, vertex)
        width = step_memo.get(key)
        if width is None:
            width = _quantized(width_fn(union_after(vertex, eliminated)))
            step_memo[key] = width
        return width

    best = [float("inf")]
    visited: dict = {}

    def search(eliminated: frozenset, running: float) -> None:
        if running >= best[0]:
            return
        previous = visited.get(eliminated)
        if previous is not None and previous <= running:
            return
        visited[eliminated] = running
        if len(eliminated) == n:
            best[0] = running
            return
        # Free vertices sit in the ordering prefix, i.e. they are only
        # eliminated once every bound vertex has been.
        bound_done = len(eliminated) >= bound_count
        for vertex in vertices:
            if vertex in eliminated:
                continue
            if vertex in free_set and not bound_done:
                continue
            width = step_width(eliminated, vertex)
            search(eliminated | {vertex}, max(running, width))

    search(frozenset(), float("-inf"))
    best_width = best[0]

    # Reconstruct the lexicographically smallest optimal ordering from the
    # front (the front vertex is the one eliminated *last*): a remaining set
    # is feasible iff some vertex of it can be eliminated last within budget
    # and the rest remains feasible.
    feasible_memo: dict = {frozenset(): True}

    def front_candidates(remaining: frozenset) -> FrozenSet:
        """Vertices allowed at the front (eliminated last) of ``remaining``."""
        remaining_free = remaining & free_set
        return remaining_free if remaining_free else remaining

    def feasible(remaining: frozenset) -> bool:
        result = feasible_memo.get(remaining)
        if result is None:
            result = any(
                step_width(remaining - {v}, v) <= best_width
                and feasible(remaining - {v})
                for v in front_candidates(remaining)
            )
            feasible_memo[remaining] = result
        return result

    ordering: List = []
    remaining = frozenset(vertices)
    while remaining:
        allowed = front_candidates(remaining)
        for vertex in vertices:
            if vertex not in allowed:
                continue
            rest = remaining - {vertex}
            if step_width(rest, vertex) <= best_width and feasible(rest):
                ordering.append(vertex)
                remaining = rest
                break
        else:  # pragma: no cover - the optimum is always attainable
            ordering.extend(sorted(remaining, key=repr))
            break
    return ordering, best_width


def best_ordering_exhaustive(
    hypergraph: Hypergraph,
    width_fn: Callable[[FrozenSet], float],
    candidates: Sequence[Sequence] | None = None,
    free: Sequence = (),
) -> List:
    """Minimise an induced width over all orderings (or given candidates).

    When ``candidates`` is ``None`` the full ordering space is searched by
    the branch-and-bound of :func:`best_ordering_search` — complete, so the
    result is the same quantised width the historical permutation scan
    produced, including its tie-break (the earliest optimal permutation of
    the repr-sorted vertex set in enumeration order).  With ``candidates``
    the given orderings are scanned directly; widths are quantised before
    comparison and ties keep the earliest candidate, so the result is
    deterministic even when ``width_fn`` is LP-derived.

    ``free`` vertices are constrained to the ordering prefix (they are
    eliminated last): the branch-and-bound honours them structurally, and
    explicit ``candidates`` violating the prefix are skipped.
    """
    from repro.hypergraph.elimination import elimination_sequence

    vertices = sorted(hypergraph.vertices, key=repr)
    free_set = frozenset(free) & frozenset(vertices)
    if candidates is None:
        ordering, _ = best_ordering_search(hypergraph, width_fn, free=free_set)
        return ordering if ordering else list(vertices)

    best_order: List | None = None
    best_width = float("inf")
    for order in candidates:
        if free_set and set(order[: len(free_set)]) != set(free_set):
            continue
        steps = elimination_sequence(hypergraph, order)
        width = max((_quantized(width_fn(step.union)) for step in steps), default=0.0)
        if width < best_width:
            best_width = width
            best_order = list(order)
    return best_order if best_order is not None else list(vertices)

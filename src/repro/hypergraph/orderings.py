"""Vertex-ordering heuristics (min-fill, min-degree, greedy cover, exhaustive).

Orderings are central to the paper: InsideOut's runtime is governed by the
induced sets ``U_k`` of the chosen ordering, and the widths of Section 4.4
are minima of induced widths over orderings.  For large hypergraphs finding
optimal orderings is NP-hard (Section 7), so the usual PGM/CSP heuristics are
provided alongside an exhaustive search for small instances.
"""

from __future__ import annotations

import itertools
from typing import Callable, FrozenSet, List, Sequence

import networkx as nx

from repro.hypergraph.covers import fractional_edge_cover_number
from repro.hypergraph.hypergraph import Hypergraph

# Fractional-cover costs come out of an LP solver, so two vertices whose
# neighbourhoods have the *same* cover number can differ in the last float
# bits and flip the greedy choice between runs or platforms.  All heuristics
# therefore compare costs quantised to this many decimals and break the
# remaining ties on the vertex repr — orderings are fully deterministic.
_COST_DECIMALS = 9


def _quantized(cost: float) -> float:
    """Quantise an LP-derived cost so equal-by-maths costs compare equal."""
    return round(cost, _COST_DECIMALS)


def _fill_in_count(graph: nx.Graph, vertex) -> int:
    """Number of edges that eliminating ``vertex`` would add to ``graph``."""
    neighbors = list(graph.neighbors(vertex))
    missing = 0
    for i, u in enumerate(neighbors):
        for v in neighbors[i + 1:]:
            if not graph.has_edge(u, v):
                missing += 1
    return missing


def min_fill_ordering(hypergraph: Hypergraph) -> List:
    """The min-fill elimination heuristic on the Gaifman graph.

    Vertices are eliminated in the order that greedily minimises the number
    of fill-in edges; the returned list is the *vertex ordering* ``σ``
    (i.e. the reverse of the elimination order), matching the convention of
    Definition 4.7 where elimination proceeds from the back of ``σ``.
    Cost ties break on the vertex repr, so the ordering is deterministic
    regardless of vertex insertion order.
    """
    graph = hypergraph.gaifman_graph()
    eliminated: List = []
    while graph.number_of_nodes():
        vertex = min(graph.nodes, key=lambda v: (_fill_in_count(graph, v), repr(v)))
        neighbors = list(graph.neighbors(vertex))
        for i, u in enumerate(neighbors):
            for v in neighbors[i + 1:]:
                graph.add_edge(u, v)
        graph.remove_node(vertex)
        eliminated.append(vertex)
    return list(reversed(eliminated))


def min_degree_ordering(hypergraph: Hypergraph) -> List:
    """The min-degree elimination heuristic (same conventions as min-fill)."""
    graph = hypergraph.gaifman_graph()
    eliminated: List = []
    while graph.number_of_nodes():
        vertex = min(graph.nodes, key=lambda v: (graph.degree(v), repr(v)))
        neighbors = list(graph.neighbors(vertex))
        for i, u in enumerate(neighbors):
            for v in neighbors[i + 1:]:
                graph.add_edge(u, v)
        graph.remove_node(vertex)
        eliminated.append(vertex)
    return list(reversed(eliminated))


def greedy_fractional_cover_ordering(hypergraph: Hypergraph) -> List:
    """Greedy ordering minimising ``ρ*`` of each eliminated neighbourhood.

    At every step the vertex whose current neighbourhood (the union of its
    incident edges) has the smallest fractional edge cover number w.r.t. the
    *original* hypergraph is eliminated next.  More expensive than min-fill
    (one LP per candidate per step) but tracks the FAQ-width objective
    directly.
    """
    original = hypergraph
    current = hypergraph
    eliminated: List = []
    while current.num_vertices:
        def cost(vertex) -> float:
            union = current.neighborhood(vertex)
            if not union:
                return 0.0
            return _quantized(fractional_edge_cover_number(original, union))

        vertex = min(current.vertices, key=lambda v: (cost(v), repr(v)))
        union = current.neighborhood(vertex)
        rest = set(current.vertices) - {vertex}
        new_edges = [e for e in current.edges if vertex not in e]
        residual = union - {vertex}
        if residual:
            new_edges.append(residual)
        current = Hypergraph(rest, new_edges)
        eliminated.append(vertex)
    return list(reversed(eliminated))


def best_ordering_exhaustive(
    hypergraph: Hypergraph,
    width_fn: Callable[[FrozenSet], float],
    candidates: Sequence[Sequence] | None = None,
) -> List:
    """Exhaustively minimise an induced width over orderings (or candidates).

    When ``candidates`` is ``None`` all permutations of the vertex set are
    tried — factorial cost, use only for small hypergraphs.  Widths are
    quantised before comparison and ties keep the earliest candidate in
    enumeration order (permutations of the repr-sorted vertex set), so the
    result is deterministic even when ``width_fn`` is LP-derived.
    """
    from repro.hypergraph.elimination import elimination_sequence

    vertices = sorted(hypergraph.vertices, key=repr)
    pool = candidates if candidates is not None else itertools.permutations(vertices)

    best_order: List | None = None
    best_width = float("inf")
    for order in pool:
        steps = elimination_sequence(hypergraph, order)
        width = max((_quantized(width_fn(step.union)) for step in steps), default=0.0)
        if width < best_width:
            best_width = width
            best_order = list(order)
    return best_order if best_order is not None else list(vertices)

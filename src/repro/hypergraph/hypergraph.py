"""The :class:`Hypergraph` class (multi-hypergraphs over named vertices)."""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Set, Tuple

import networkx as nx


class HypergraphError(ValueError):
    """Raised on malformed hypergraph operations."""


class Hypergraph:
    """A multi-hypergraph ``H = (V, E)`` over hashable vertex names.

    Edges are stored as a list of frozensets so that repeated hyperedges
    (multi-edges, which arise naturally from repeated factors) are preserved.
    Isolated vertices (vertices in ``V`` that belong to no edge) are allowed
    and tracked explicitly.
    """

    __slots__ = ("_vertices", "_edges", "_gaifman")

    def __init__(
        self,
        vertices: Iterable | None = None,
        edges: Iterable[Iterable] | None = None,
    ) -> None:
        self._edges: List[FrozenSet] = [frozenset(e) for e in (edges or [])]
        vertex_set: Set = set(vertices) if vertices is not None else set()
        for edge in self._edges:
            vertex_set |= edge
        self._vertices: Set = vertex_set
        self._gaifman: nx.Graph | None = None

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def vertices(self) -> FrozenSet:
        """The vertex set ``V``."""
        return frozenset(self._vertices)

    @property
    def edges(self) -> Tuple[FrozenSet, ...]:
        """The hyperedge multiset ``E`` (order preserved, duplicates kept)."""
        return tuple(self._edges)

    @property
    def num_vertices(self) -> int:
        return len(self._vertices)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def __contains__(self, vertex) -> bool:
        return vertex in self._vertices

    def __iter__(self) -> Iterator:
        return iter(self._vertices)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Hypergraph(n={self.num_vertices}, m={self.num_edges})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, Hypergraph):
            return NotImplemented
        return self._vertices == other._vertices and sorted(
            map(sorted, map(list, self._edges))
        ) == sorted(map(sorted, map(list, other._edges)))

    def __hash__(self):  # pragma: no cover - rarely used
        return hash((frozenset(self._vertices), frozenset(self._edges)))

    # ------------------------------------------------------------------ #
    # mutation-free derived hypergraphs
    # ------------------------------------------------------------------ #
    def add_vertex(self, vertex) -> "Hypergraph":
        """Return a copy with ``vertex`` added (as an isolated vertex)."""
        return Hypergraph(self._vertices | {vertex}, self._edges)

    def add_edge(self, edge: Iterable) -> "Hypergraph":
        """Return a copy with ``edge`` appended."""
        return Hypergraph(self._vertices, list(self._edges) + [frozenset(edge)])

    def incident_edges(self, vertex) -> List[FrozenSet]:
        """``∂(v)``: the edges containing ``vertex``."""
        return [e for e in self._edges if vertex in e]

    def neighborhood(self, vertex) -> FrozenSet:
        """``U(v) = ∪ ∂(v)``: the union of edges incident to ``vertex``."""
        result: Set = set()
        for edge in self._edges:
            if vertex in edge:
                result |= edge
        return frozenset(result)

    def induced(self, keep: Iterable) -> "Hypergraph":
        """The sub-hypergraph induced by the vertex set ``keep``.

        Each edge is intersected with ``keep``; empty intersections are
        dropped.  (This is ``H[L]`` in the notation of Section 7.)
        """
        keep_set = set(keep)
        edges = [e & keep_set for e in self._edges]
        edges = [e for e in edges if e]
        return Hypergraph(keep_set & self._vertices, edges)

    def remove_vertices(self, remove: Iterable) -> "Hypergraph":
        """The hypergraph ``H - L``: delete vertices and shrink edges."""
        remove_set = set(remove)
        return self.induced(self._vertices - remove_set)

    def restrict_edges(self, predicate) -> "Hypergraph":
        """Keep only edges satisfying ``predicate`` (vertices unchanged)."""
        return Hypergraph(self._vertices, [e for e in self._edges if predicate(e)])

    def deduplicated(self) -> "Hypergraph":
        """Drop duplicate edges and edges contained in other edges."""
        unique = set(self._edges)
        maximal = [
            e for e in unique if not any(e < other for other in unique)
        ]
        return Hypergraph(self._vertices, maximal)

    # ------------------------------------------------------------------ #
    # graph views
    # ------------------------------------------------------------------ #
    def _gaifman_cached(self) -> nx.Graph:
        """The lazily built, shared Gaifman graph.  Never mutate the result."""
        if self._gaifman is None:
            graph = nx.Graph()
            graph.add_nodes_from(self._vertices)
            for edge in self._edges:
                members = sorted(edge, key=repr)
                for i, u in enumerate(members):
                    for v in members[i + 1:]:
                        graph.add_edge(u, v)
            self._gaifman = graph
        return self._gaifman

    def gaifman_graph(self) -> nx.Graph:
        """The Gaifman (primal) graph: vertices adjacent iff co-occurring.

        Built once per hypergraph and cached (hypergraphs are immutable);
        each call returns a fresh copy so callers remain free to mutate the
        graph, as the elimination heuristics do.
        """
        return self._gaifman_cached().copy()

    def gaifman_adjacency(self) -> Dict:
        """``{vertex: frozenset(neighbors)}`` of the (cached) Gaifman graph."""
        graph = self._gaifman_cached()
        return {v: frozenset(graph.neighbors(v)) for v in graph.nodes}

    def connected_components(self) -> List[FrozenSet]:
        """Connected components of the Gaifman graph (isolated vertices are
        singleton components).  Deterministic order: sorted by repr of the
        smallest member."""
        graph = self._gaifman_cached()
        components = [frozenset(c) for c in nx.connected_components(graph)]
        return sorted(components, key=lambda c: min(repr(v) for v in c))

    def is_connected(self) -> bool:
        """``True`` if the Gaifman graph is connected (or has ≤ 1 vertex)."""
        return len(self.connected_components()) <= 1

    # ------------------------------------------------------------------ #
    # convenience constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_scopes(cls, scopes: Iterable[Iterable]) -> "Hypergraph":
        """Build a hypergraph whose edges are the given factor scopes."""
        return cls(edges=scopes)

    @classmethod
    def from_graph(cls, graph: nx.Graph) -> "Hypergraph":
        """Build the 2-uniform hypergraph of an (undirected) graph."""
        return cls(graph.nodes, [frozenset(e) for e in graph.edges])

    def edge_vertex_incidence(self) -> Dict[FrozenSet, List[int]]:
        """Map each distinct edge to the list of its positions in ``edges``."""
        positions: Dict[FrozenSet, List[int]] = {}
        for i, edge in enumerate(self._edges):
            positions.setdefault(edge, []).append(i)
        return positions

"""Tree decompositions and the width-parameter family (Section 4.3 / 4.4).

The paper uses Adler's width-function framework: the ``g``-width of a tree
decomposition is the maximum of ``g`` over its bags, and (Lemma 4.12 /
Corollary 4.13) equals the minimum induced ``g``-width over vertex orderings
for monotone ``g``.  We exploit that equivalence computationally: widths are
computed over vertex orderings (exhaustively for small hypergraphs, with
min-fill / greedy heuristics otherwise), and decompositions are materialised
from orderings when an explicit tree is needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Sequence, Tuple

import networkx as nx

from repro.hypergraph.covers import (
    fractional_edge_cover_number,
    integral_edge_cover_number,
)
from repro.hypergraph.elimination import elimination_sequence
from repro.hypergraph.hypergraph import Hypergraph, HypergraphError
from repro.hypergraph.orderings import _quantized, best_ordering_search, min_fill_ordering


@dataclass
class TreeDecomposition:
    """A tree decomposition ``(T, χ)`` of a hypergraph.

    ``tree`` is a networkx tree whose nodes are opaque identifiers and
    ``bags`` maps each tree node to a frozenset of hypergraph vertices.
    """

    tree: nx.Graph
    bags: Dict[object, FrozenSet]
    hypergraph: Hypergraph = field(default=None)

    # ------------------------------------------------------------------ #
    def width(self, width_fn: Callable[[FrozenSet], float]) -> float:
        """The ``g``-width: maximum of ``width_fn`` over all bags."""
        if not self.bags:
            return 0.0
        return max(width_fn(bag) for bag in self.bags.values())

    def tree_width(self) -> int:
        """Classic treewidth contribution: ``max |bag| - 1``."""
        if not self.bags:
            return 0
        return max(len(bag) for bag in self.bags.values()) - 1

    def fractional_width(self, hypergraph: Hypergraph | None = None) -> float:
        """``ρ*``-width of this decomposition w.r.t. ``hypergraph``."""
        h = hypergraph or self.hypergraph
        if h is None:
            raise HypergraphError("a hypergraph is needed to evaluate ρ*-width")
        return self.width(lambda bag: fractional_edge_cover_number(h, bag))

    def integral_width(self, hypergraph: Hypergraph | None = None) -> float:
        """``ρ``-width (generalized hypertree width upper bound)."""
        h = hypergraph or self.hypergraph
        if h is None:
            raise HypergraphError("a hypergraph is needed to evaluate ρ-width")
        return self.width(lambda bag: integral_edge_cover_number(h, bag))

    # ------------------------------------------------------------------ #
    def is_valid(self, hypergraph: Hypergraph | None = None) -> bool:
        """Check the two tree-decomposition properties (Definition 4.3)."""
        h = hypergraph or self.hypergraph
        if h is None:
            raise HypergraphError("a hypergraph is needed for validation")
        if self.tree.number_of_nodes() != len(self.bags):
            return False
        if self.tree.number_of_nodes() and not nx.is_tree(self.tree):
            # Allow forests only when the hypergraph is disconnected.
            if not nx.is_forest(self.tree):
                return False
        # (a) every hyperedge inside some bag
        for edge in h.edges:
            if edge and not any(edge <= bag for bag in self.bags.values()):
                return False
        # (b) running intersection property per vertex
        for vertex in h.vertices:
            nodes = [node for node, bag in self.bags.items() if vertex in bag]
            if not nodes:
                return False
            sub = self.tree.subgraph(nodes)
            if sub.number_of_nodes() and not nx.is_connected(sub):
                return False
        return True

    def bag_list(self) -> List[FrozenSet]:
        """All bags as a list (stable order by node repr)."""
        return [self.bags[node] for node in sorted(self.bags, key=repr)]


# ---------------------------------------------------------------------- #
# ordering <-> decomposition
# ---------------------------------------------------------------------- #
def decomposition_from_ordering(
    hypergraph: Hypergraph, ordering: Sequence
) -> TreeDecomposition:
    """Build a tree decomposition whose bags are the induced sets ``U_k``.

    This is the standard construction behind Lemma 4.12: eliminate vertices
    from the back of ``ordering``; the bag for ``v_k`` is ``U_k``; it is
    connected to the bag of the lowest-positioned vertex appearing in
    ``U_k - {v_k}`` (or to the next bag when ``U_k`` is a singleton).
    """
    order = list(ordering)
    steps = elimination_sequence(hypergraph, order)
    position = {v: i for i, v in enumerate(order)}

    tree = nx.Graph()
    bags: Dict[object, FrozenSet] = {}
    for step in steps:
        node = ("bag", step.vertex)
        bags[node] = frozenset(step.union)
        tree.add_node(node)

    for step in steps:
        node = ("bag", step.vertex)
        rest = step.union - {step.vertex}
        if rest:
            # Connect to the earliest remaining vertex's bag (the vertex in
            # rest with the largest position is eliminated next among them,
            # which is the standard parent choice).
            parent_vertex = max(rest, key=lambda v: position[v])
            tree.add_edge(node, ("bag", parent_vertex))
        else:
            # Isolated bag: attach to the previous vertex's bag to keep a tree
            # when possible (purely cosmetic; a forest is also acceptable).
            k = position[step.vertex]
            if k > 0:
                tree.add_edge(node, ("bag", order[k - 1]))

    # Connect any remaining components so downstream consumers (junction tree
    # calibration, GYO extraction) always see a single tree.  Linking bags of
    # different hypergraph components never violates the running-intersection
    # property because they share no vertices.
    components = list(nx.connected_components(tree)) if tree.number_of_nodes() else []
    for previous, current in zip(components, components[1:]):
        tree.add_edge(sorted(previous, key=repr)[0], sorted(current, key=repr)[0])
    return TreeDecomposition(tree=tree, bags=bags, hypergraph=hypergraph)


def ordering_from_decomposition(decomposition: TreeDecomposition) -> List:
    """Extract a vertex ordering from a tree decomposition (GYO-style).

    Repeatedly take a leaf bag of the tree, emit the vertices that appear in
    no other bag (in the *elimination* order), and remove the bag.  The
    returned list is the vertex ordering ``σ`` (reverse of elimination), so
    that running the elimination sequence along it yields induced sets that
    are contained in bags of the decomposition.
    """
    tree = decomposition.tree.copy()
    bags = dict(decomposition.bags)
    eliminated: List = []
    seen: set = set()

    while bags:
        if tree.number_of_nodes() == 1 or not tree.number_of_edges():
            leaves = list(bags.keys())
        else:
            leaves = [node for node in tree.nodes if tree.degree(node) <= 1]
        node = sorted(leaves, key=repr)[0]
        bag = bags[node]
        others: set = set()
        for other_node, other_bag in bags.items():
            if other_node != node:
                others |= other_bag
        exclusive = sorted(bag - others - set(seen), key=repr)
        eliminated.extend(exclusive)
        seen.update(exclusive)
        tree.remove_node(node)
        del bags[node]

    # Any vertices never emitted (e.g. appearing in every bag) go last in the
    # elimination, i.e. first in the ordering.
    all_vertices = set()
    for bag in decomposition.bags.values():
        all_vertices |= bag
    leftovers = sorted(all_vertices - set(eliminated), key=repr)
    eliminated.extend(leftovers)
    return list(reversed(eliminated))


# ---------------------------------------------------------------------- #
# width parameters of a hypergraph
# ---------------------------------------------------------------------- #
def _width_over_orderings(
    hypergraph: Hypergraph,
    width_fn: Callable[[FrozenSet], float],
    exact_limit: int,
) -> Tuple[float, List]:
    """Minimise the induced ``g``-width over orderings.

    Exact (complete branch-and-bound search, see
    :func:`repro.hypergraph.orderings.best_ordering_search`) for
    ≤ ``exact_limit`` vertices, otherwise the min-fill heuristic ordering
    plus a handful of greedy restarts.
    """
    vertices = sorted(hypergraph.vertices, key=repr)
    if not vertices:
        return 0.0, []

    def ordering_width(order: Sequence) -> float:
        # Quantised like the exact branch, so widths compare consistently
        # across the exact_limit size boundary.
        steps = elimination_sequence(hypergraph, order)
        return max(_quantized(width_fn(step.union)) for step in steps)

    if len(vertices) <= exact_limit:
        best_order, best_width = best_ordering_search(hypergraph, width_fn)
        return best_width, best_order

    candidates = [min_fill_ordering(hypergraph)]
    candidates.append(list(vertices))
    candidates.append(list(reversed(vertices)))
    best_order = min(candidates, key=ordering_width)
    return ordering_width(best_order), list(best_order)


def treewidth(hypergraph: Hypergraph, exact_limit: int = 8) -> int:
    """The treewidth ``tw(H)`` (``s``-width with ``s(B) = |B| - 1``)."""
    width, _ = _width_over_orderings(hypergraph, lambda bag: len(bag) - 1, exact_limit)
    return int(width) if width != float("inf") else 0


def _covered_vertices(hypergraph: Hypergraph) -> FrozenSet:
    """Vertices that belong to at least one hyperedge (coverable vertices)."""
    covered: set = set()
    for edge in hypergraph.edges:
        covered |= edge
    return frozenset(covered)


def hypertree_width(hypergraph: Hypergraph, exact_limit: int = 8) -> float:
    """(Generalized) hypertree width upper bound: the ``ρ``-width.

    Vertices covered by no hyperedge (isolated query variables) are ignored —
    they contribute nothing to the cover.
    """
    covered = _covered_vertices(hypergraph)
    width, _ = _width_over_orderings(
        hypergraph,
        lambda bag: integral_edge_cover_number(hypergraph, bag & covered),
        exact_limit,
    )
    return width


def fractional_hypertree_width(
    hypergraph: Hypergraph, exact_limit: int = 8, return_ordering: bool = False
):
    """The fractional hypertree width ``fhtw(H)`` (the ``ρ*``-width).

    Uses the vertex-ordering characterisation of Corollary 4.13.  When
    ``return_ordering`` is true, also returns a witnessing vertex ordering.
    Vertices covered by no hyperedge are ignored.
    """
    width, order = _width_over_orderings(
        hypergraph,
        lambda bag: fractional_edge_cover_number(hypergraph, bag, ignore_uncovered=True),
        exact_limit,
    )
    if return_ordering:
        return width, order
    return width

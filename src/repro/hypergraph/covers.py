"""Edge covers and the AGM bound (Section 4.2 of the paper).

* :func:`fractional_edge_cover` — solves the fractional edge cover linear
  program for a vertex subset ``B``, optionally with per-edge weights
  (``log |ψ_S|`` for the AGM bound).
* :func:`fractional_edge_cover_number` — ``ρ*_H(B)``, memoised process-wide
  by the *restricted edge structure* ``{S ∩ B : S ∈ E, S ∩ B ≠ ∅}``: the LP
  depends on the hypergraph only through which (deduplicated) edge
  restrictions cover ``B``, and the same structures recur thousands of times
  across ordering-search candidates, planner invocations and queries.
* :func:`integral_edge_cover_number` — ``ρ_H(B)`` (exact for small edge
  counts via branch-and-bound over distinct edges, otherwise greedy with a
  logarithmic guarantee — the paper only needs ``ρ*`` for its main results).
* :func:`agm_bound` — the data-dependent AGM bound ``∏ |ψ_S|^{λ*_S}``.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Iterable, Mapping, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.caching import LruCache
from repro.hypergraph.hypergraph import Hypergraph, HypergraphError


def _distinct_covering_edges(
    hypergraph: Hypergraph, target: FrozenSet
) -> Tuple[Tuple[FrozenSet, ...], Dict[FrozenSet, float]]:
    """Distinct edges intersecting ``target`` (duplicates collapsed)."""
    seen: Dict[FrozenSet, float] = {}
    for edge in hypergraph.edges:
        if edge & target:
            seen.setdefault(edge, 0.0)
    return tuple(seen.keys()), seen


def fractional_edge_cover(
    hypergraph: Hypergraph,
    subset: Iterable | None = None,
    weights: Mapping[FrozenSet, float] | None = None,
    ignore_uncovered: bool = False,
) -> Tuple[float, Dict[FrozenSet, float]]:
    """Solve the fractional edge cover LP for ``subset`` (default: all of V).

    Minimise ``Σ_S w_S · λ_S`` subject to ``Σ_{S ∋ v} λ_S ≥ 1`` for every
    ``v`` in the subset and ``λ ≥ 0``.  ``weights`` defaults to all ones
    (giving ``ρ*``); pass ``log2 |ψ_S|`` to obtain the exponent of the AGM
    bound.

    Returns ``(objective, {edge: λ_S})``.  Raises if some subset vertex is
    covered by no edge (the LP would be infeasible), unless
    ``ignore_uncovered`` is set, in which case uncovered vertices are simply
    dropped from the constraint set (useful for queries with variables that
    occur in no factor).
    """
    target = frozenset(subset) if subset is not None else hypergraph.vertices
    target = frozenset(v for v in target if v in hypergraph.vertices)
    if not target:
        return 0.0, {}

    edges, _ = _distinct_covering_edges(hypergraph, target)
    covered = set()
    for edge in edges:
        covered |= edge & target
    missing = target - covered
    if missing:
        if ignore_uncovered:
            target = target - missing
            if not target:
                return 0.0, {}
            edges, _ = _distinct_covering_edges(hypergraph, target)
        else:
            raise HypergraphError(
                f"vertices {sorted(map(repr, missing))} are not covered by any hyperedge"
            )

    vertex_list = sorted(target, key=repr)
    num_edges = len(edges)
    costs = np.ones(num_edges)
    if weights is not None:
        for j, edge in enumerate(edges):
            costs[j] = weights.get(edge, 1.0)

    # Constraints: for each vertex v in target, sum over edges containing v of
    # lambda_e >= 1, expressed as -A lambda <= -1 for linprog.
    a_ub = np.zeros((len(vertex_list), num_edges))
    for i, vertex in enumerate(vertex_list):
        for j, edge in enumerate(edges):
            if vertex in edge:
                a_ub[i, j] = -1.0
    b_ub = -np.ones(len(vertex_list))

    result = linprog(costs, A_ub=a_ub, b_ub=b_ub, bounds=[(0, None)] * num_edges, method="highs")
    if not result.success:  # pragma: no cover - defensive
        raise HypergraphError(f"fractional edge cover LP failed: {result.message}")
    solution = {edge: float(result.x[j]) for j, edge in enumerate(edges)}
    return float(result.fun), solution


# The restricted-edge-structure memo for ρ*.  Keys are frozensets of the
# non-empty edge restrictions ``S ∩ B`` — the target itself is implied (it is
# the union of the restrictions once uncovered vertices are handled), so one
# entry serves every (hypergraph, subset) pair inducing the same structure.
# A real (thread-safe) LRU: full caches evict the least recently used
# structure instead of dropping everything at once, and concurrent planner
# threads (repro.serve) share it safely.
_RHO_STAR_CACHE = LruCache(maxsize=100_000)
_RHO_STAR_KIND = "repro-rho-star"
_RHO_STAR_VERSION = 1


def rho_star_cache_info() -> Dict[str, int]:
    """Hit/miss/size counters of the process-wide ρ* memo (observability)."""
    return {
        "hits": _RHO_STAR_CACHE.hits,
        "misses": _RHO_STAR_CACHE.misses,
        "size": len(_RHO_STAR_CACHE),
    }


def clear_rho_star_cache() -> None:
    """Drop the process-wide ρ* memo (tests and benchmarks)."""
    _RHO_STAR_CACHE.clear()


def save_rho_star_cache(path) -> int:
    """Persist the ρ* memo to ``path``; returns the number of entries written.

    The memo is keyed purely by restricted edge structure (no data sizes,
    no variable names), so persisted values stay exact forever; the format
    version only guards against layout changes of the key itself.
    """
    return _RHO_STAR_CACHE.save(path, kind=_RHO_STAR_KIND, version=_RHO_STAR_VERSION)


def load_rho_star_cache(path) -> int:
    """Warm the ρ* memo from :func:`save_rho_star_cache` output."""
    return _RHO_STAR_CACHE.load(path, kind=_RHO_STAR_KIND, version=_RHO_STAR_VERSION)


def dump_rho_star_section() -> dict:
    """Snapshot the ρ* memo as a shared-memory cache-store section.

    The serving tier's fleet parent publishes this through
    :class:`repro.exec.shm.SharedCacheStore` so cold replicas adopt the
    fleet-wide warm memo instead of re-solving the LPs.
    """
    return _RHO_STAR_CACHE.dump_entries(
        kind=_RHO_STAR_KIND, version=_RHO_STAR_VERSION
    )


def adopt_rho_star_section(payload) -> int:
    """Merge a :func:`dump_rho_star_section` payload (best-effort)."""
    return _RHO_STAR_CACHE.adopt_entries(
        payload, kind=_RHO_STAR_KIND, version=_RHO_STAR_VERSION
    )


def fractional_edge_cover_number(
    hypergraph: Hypergraph,
    subset: Iterable | None = None,
    ignore_uncovered: bool = False,
) -> float:
    """``ρ*_H(B)``: the optimal value of the fractional edge cover LP.

    Memoised process-wide on the restricted edge structure (see the module
    docstring): the LP is solved at most once per distinct structure, over a
    canonically sorted restricted hypergraph so the cached value is
    bit-identical no matter which caller populated it.
    """
    target = frozenset(subset) if subset is not None else hypergraph.vertices
    target = frozenset(v for v in target if v in hypergraph.vertices)
    if not target:
        return 0.0

    distinct = {e & target for e in hypergraph.edges if e & target}
    covered: set = set()
    for edge in distinct:
        covered |= edge
    missing = target - covered
    if missing:
        if not ignore_uncovered:
            raise HypergraphError(
                f"vertices {sorted(map(repr, missing))} are not covered by any hyperedge"
            )
        if not covered:
            return 0.0
        # Dropped vertices belonged to no edge, so the restrictions (and with
        # them the memo key) are unchanged by shrinking the target.

    # A restriction contained in another never helps the LP (its weight can
    # always be shifted to the superset at equal cost), so dominated
    # restrictions are dropped from the canonical structure.
    restricted = frozenset(
        e for e in distinct if not any(e < other for other in distinct)
    )

    cached = _RHO_STAR_CACHE.get(restricted)
    if cached is not None:
        return cached
    canonical = Hypergraph(
        covered, sorted(restricted, key=lambda e: sorted(map(repr, e)))
    )
    objective, _ = fractional_edge_cover(canonical)
    _RHO_STAR_CACHE.put(restricted, objective)
    return objective


def integral_edge_cover_number(
    hypergraph: Hypergraph, subset: Iterable | None = None, exact_limit: int = 20
) -> int:
    """``ρ_H(B)``: the minimum number of edges covering ``B``.

    Exact (branch and bound on distinct edges) when the number of distinct
    candidate edges is at most ``exact_limit``; greedy set-cover otherwise.
    """
    target = frozenset(subset) if subset is not None else hypergraph.vertices
    target = frozenset(v for v in target if v in hypergraph.vertices)
    if not target:
        return 0
    edges, _ = _distinct_covering_edges(hypergraph, target)
    covered = set()
    for edge in edges:
        covered |= edge & target
    if target - covered:
        raise HypergraphError("subset not coverable by hyperedges")

    restricted = sorted({e & target for e in edges}, key=lambda e: (-len(e), sorted(map(repr, e))))
    # Drop dominated edges (subset of another restricted edge).
    maximal = [e for e in restricted if not any(e < other for other in restricted)]

    if len(maximal) <= exact_limit:
        best = [len(maximal)]

        def branch(remaining: FrozenSet, used: int, start: int) -> None:
            if used >= best[0]:
                return
            if not remaining:
                best[0] = used
                return
            # Choose an uncovered vertex and branch on the edges covering it.
            pivot = next(iter(remaining))
            for idx in range(len(maximal)):
                edge = maximal[idx]
                if pivot in edge:
                    branch(remaining - edge, used + 1, idx + 1)

        branch(target, 0, 0)
        return best[0]

    # Greedy fallback.
    remaining = set(target)
    count = 0
    while remaining:
        best_edge = max(maximal, key=lambda e: len(e & remaining))
        gain = best_edge & remaining
        if not gain:  # pragma: no cover - defensive
            raise HypergraphError("greedy cover stalled")
        remaining -= gain
        count += 1
    return count


def agm_bound(
    hypergraph: Hypergraph,
    factor_sizes: Mapping[FrozenSet, int],
    subset: Iterable | None = None,
) -> float:
    """The AGM bound ``AGM_H(B) = ∏_S |ψ_S|^{λ*_S}`` (equation (3)).

    ``factor_sizes`` maps each distinct hyperedge to the size of (the largest)
    factor on that edge.  Edges of size 0 force the bound to 0 whenever they
    intersect the target; edges of size 1 contribute nothing.
    """
    target = frozenset(subset) if subset is not None else hypergraph.vertices
    target = frozenset(v for v in target if v in hypergraph.vertices)
    if not target:
        return 1.0

    weights: Dict[FrozenSet, float] = {}
    for edge in set(hypergraph.edges):
        size = factor_sizes.get(edge, None)
        if size is None:
            continue
        if size <= 0:
            if edge & target:
                return 0.0
            continue
        weights[edge] = math.log2(size) if size > 1 else 0.0

    objective, _ = fractional_edge_cover(hypergraph, target, weights=weights)
    return float(2.0 ** objective)

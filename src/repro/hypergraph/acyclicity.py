"""α- and β-acyclicity, GYO reduction, join trees and nested elimination orders.

* **α-acyclicity** (Definition 4.4): a hypergraph admitting a tree
  decomposition whose bags are hyperedges.  Tested with the classic
  GYO (Graham / Yu–Özsoyoğlu) reduction.
* **Join tree**: for α-acyclic hypergraphs, constructed as a maximum-weight
  spanning tree over edge-intersection sizes (a standard characterisation).
* **β-acyclicity** (Definition 4.5): every sub-hypergraph is α-acyclic;
  equivalently (Proposition 4.10) there is a *nested elimination order*, an
  ordering in which every eliminated vertex's incident edges form an
  inclusion chain.  β-acyclicity is what makes SAT and #SAT tractable in
  Section 8.3 of the paper.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.hypergraph.hypergraph import Hypergraph


def gyo_reduction(hypergraph: Hypergraph) -> Tuple[Hypergraph, List]:
    """Run the GYO reduction; return the residual hypergraph and ear order.

    The reduction repeatedly (a) removes *ear vertices* that appear in at
    most one distinct edge, and (b) removes edges contained in other edges.
    The input is α-acyclic iff the residual hypergraph has no edges with
    more than zero vertices remaining in >1 edge — i.e. iff everything
    reduces away.

    Returns
    -------
    (residual, removed_vertices)
        ``residual`` is the fully reduced hypergraph, ``removed_vertices``
        the vertices in the order they were eliminated.
    """
    edges: List[Set] = [set(e) for e in hypergraph.edges if e]
    vertices: Set = set(hypergraph.vertices)
    removed: List = []

    changed = True
    while changed:
        changed = False
        # (b) drop edges contained in another edge (or duplicates).
        kept: List[Set] = []
        for i, edge in enumerate(edges):
            contained = False
            for j, other in enumerate(edges):
                if i == j:
                    continue
                if edge < other or (edge == other and i > j):
                    contained = True
                    break
            if not contained:
                kept.append(edge)
        if len(kept) != len(edges):
            edges = kept
            changed = True
        # (a) remove vertices occurring in exactly one edge.
        for vertex in sorted(vertices, key=repr):
            count = sum(1 for e in edges if vertex in e)
            if count <= 1:
                for e in edges:
                    e.discard(vertex)
                vertices.discard(vertex)
                removed.append(vertex)
                changed = True
        edges = [e for e in edges if e]

    residual = Hypergraph(vertices, [frozenset(e) for e in edges])
    return residual, removed


def is_alpha_acyclic(hypergraph: Hypergraph) -> bool:
    """``True`` iff the hypergraph is α-acyclic (GYO reduces to nothing)."""
    residual, _ = gyo_reduction(hypergraph)
    return residual.num_edges == 0 and residual.num_vertices == 0


def join_tree(hypergraph: Hypergraph) -> Optional[nx.Graph]:
    """A join tree of an α-acyclic hypergraph, or ``None`` if not acyclic.

    Nodes of the returned tree are the distinct hyperedges (frozensets); the
    tree satisfies the running-intersection property.  Built as a maximum
    spanning forest over pairwise intersection sizes, then validated.
    """
    if not is_alpha_acyclic(hypergraph):
        return None
    edges = sorted(set(e for e in hypergraph.edges if e), key=lambda e: sorted(map(repr, e)))
    tree = nx.Graph()
    tree.add_nodes_from(edges)
    weighted = nx.Graph()
    weighted.add_nodes_from(edges)
    for i, a in enumerate(edges):
        for b in edges[i + 1:]:
            weighted.add_edge(a, b, weight=len(a & b))
    forest = nx.maximum_spanning_tree(weighted) if weighted.number_of_edges() else weighted
    tree.add_edges_from(forest.edges)
    return tree


def _is_chain(sets: Sequence[FrozenSet]) -> bool:
    """``True`` iff the given sets form an inclusion chain."""
    ordered = sorted(set(sets), key=len)
    for smaller, larger in zip(ordered, ordered[1:]):
        if not smaller <= larger:
            return False
    return True


def nested_elimination_order(hypergraph: Hypergraph) -> Optional[List]:
    """A nested elimination order (NEO) of a β-acyclic hypergraph.

    Returns a vertex ordering ``σ = (v_1, ..., v_n)`` such that, eliminating
    from the back, each ``v_k``'s incident edges form an inclusion chain —
    or ``None`` if the hypergraph is not β-acyclic.

    The construction repeatedly removes a *nest point* (a vertex whose
    distinct incident edges form a chain); β-acyclic hypergraphs always have
    one (Brouwer & Kolen), and removing vertices preserves β-acyclicity.
    """
    edges: List[Set] = [set(e) for e in hypergraph.edges if e]
    vertices: Set = set(hypergraph.vertices)
    removal_order: List = []

    while vertices:
        nest_point = None
        for vertex in sorted(vertices, key=repr):
            incident = [frozenset(e) for e in edges if vertex in e]
            if _is_chain(incident):
                nest_point = vertex
                break
        if nest_point is None:
            return None
        removal_order.append(nest_point)
        vertices.discard(nest_point)
        for e in edges:
            e.discard(nest_point)
        edges = [e for e in edges if e]

    return list(reversed(removal_order))


def is_beta_acyclic(hypergraph: Hypergraph) -> bool:
    """``True`` iff the hypergraph is β-acyclic (has a NEO)."""
    return nested_elimination_order(hypergraph) is not None
